//! Exact optimal red-blue pebbling for tiny cDAGs.
//!
//! Finding an optimal pebbling is P-SPACE complete in general (Section
//! 2.3.4), but for graphs of ≤ ~16 vertices a Dijkstra search over game
//! states is tractable. This gives *ground truth* to validate both the
//! greedy scheduler (never better than optimal) and the symbolic lower
//! bounds (never above optimal) on small instances — closing the loop
//! between the paper's theory and executable schedules.
//!
//! State: (red set, blue set, computed set) as bitmasks; transitions are
//! the four game moves; edge weight 1 for load/store, 0 for compute and
//! discard. The search minimizes `Q` to reach "all outputs blue".

#![allow(clippy::needless_range_loop)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::cdag::{CDag, VertexId};

/// Result of the exact search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimalResult {
    /// The minimum number of I/O operations.
    pub q: u64,
    /// Number of states expanded (search effort diagnostic).
    pub states_explored: usize,
}

/// Compute the optimal I/O cost `Q` of pebbling `g` with `m` red pebbles.
///
/// # Panics
/// Panics if the graph has more than 20 vertices (state space too large)
/// or if `m` is too small for any valid pebbling (max in-degree + 1).
pub fn optimal_io(g: &CDag, m: usize) -> OptimalResult {
    let n = g.len();
    assert!(n <= 20, "exact search limited to 20 vertices");
    let max_indeg = (0..n as VertexId)
        .map(|v| g.preds(v).len())
        .max()
        .unwrap_or(0);
    assert!(m > max_indeg, "need at least max in-degree + 1 red pebbles");

    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut input_mask: u32 = 0;
    for v in g.inputs() {
        input_mask |= 1 << v;
    }
    let mut output_mask: u32 = 0;
    for v in g.outputs() {
        output_mask |= 1 << v;
    }
    let pred_masks: Vec<u32> = (0..n as VertexId)
        .map(|v| g.preds(v).iter().fold(0u32, |acc, &p| acc | 1 << p))
        .collect();

    // State = (red, blue). "Computed" state is implied: a vertex may be
    // (re)computed whenever its preds are red, so we don't track history —
    // recomputation is allowed, exactly as in the game.
    type State = (u32, u32);
    let start: State = (0, input_mask);

    let mut dist: HashMap<State, u64> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, State)>> = BinaryHeap::new();
    dist.insert(start, 0);
    heap.push(Reverse((0, start)));
    let mut explored = 0usize;

    while let Some(Reverse((q, (red, blue)))) = heap.pop() {
        if dist.get(&(red, blue)).copied() != Some(q) {
            continue; // stale entry
        }
        explored += 1;
        if blue & output_mask == output_mask {
            return OptimalResult {
                q,
                states_explored: explored,
            };
        }
        let red_count = red.count_ones() as usize;
        let push = |heap: &mut BinaryHeap<Reverse<(u64, State)>>,
                    dist: &mut HashMap<State, u64>,
                    nq: u64,
                    ns: State| {
            let best = dist.get(&ns).copied().unwrap_or(u64::MAX);
            if nq < best {
                dist.insert(ns, nq);
                heap.push(Reverse((nq, ns)));
            }
        };

        for v in 0..n {
            let bit = 1u32 << v;
            // load
            if blue & bit != 0 && red & bit == 0 && red_count < m {
                push(&mut heap, &mut dist, q + 1, (red | bit, blue));
            }
            // store
            if red & bit != 0 && blue & bit == 0 {
                push(&mut heap, &mut dist, q + 1, (red, blue | bit));
            }
            // compute
            if red & bit == 0
                && input_mask & bit == 0
                && red & pred_masks[v] == pred_masks[v]
                && red_count < m
            {
                push(&mut heap, &mut dist, q, (red | bit, blue));
            }
            // discard red
            if red & bit != 0 {
                push(&mut heap, &mut dist, q, (red & !bit, blue));
            }
            // discarding blue never helps reach "outputs blue" faster
        }
        let _ = full;
    }
    unreachable!("a valid pebbling always exists with m >= max in-degree + 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fig2b_cdag, lu_cdag, mmm_cdag};
    use crate::game::{execute, greedy_schedule};

    fn path(n: usize) -> CDag {
        let mut g = CDag::new();
        let vs: Vec<VertexId> = (0..n).map(|i| g.add_vertex(format!("v{i}"))).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    #[test]
    fn path_needs_one_load_one_store() {
        let g = path(5);
        let opt = optimal_io(&g, 2);
        assert_eq!(opt.q, 2); // load the input, chain computes, store output
    }

    #[test]
    fn fig2b_needs_2n_loads_n_stores() {
        // c[i] = f(a[i], b[i]): every input loaded once, every output stored
        let n = 3;
        let g = fig2b_cdag(n);
        let opt = optimal_io(&g, 3);
        assert_eq!(opt.q, (3 * n) as u64);
    }

    #[test]
    fn greedy_never_beats_optimal() {
        // kept tiny: the state space grows as C(n, <=m) * 2^(non-inputs)
        for (g, m) in [
            (mmm_cdag(2), 4usize),
            (lu_cdag(2).0, 4),
            (fig2b_cdag(4), 3),
            (path(6), 2),
        ] {
            let opt = optimal_io(&g, m);
            let moves = greedy_schedule(&g, m);
            let greedy_q = execute(&g, &moves, m).unwrap().q();
            assert!(
                greedy_q >= opt.q,
                "greedy ({greedy_q}) below optimal ({})?!",
                opt.q
            );
            // and greedy should be within a small factor on these tiny graphs
            assert!(
                greedy_q <= 3 * opt.q,
                "greedy too weak: {greedy_q} vs {}",
                opt.q
            );
        }
    }

    #[test]
    fn symbolic_bounds_never_exceed_optimal() {
        // the MMM bound 2n^3/sqrt(m) - 3m (clamped at compulsory traffic)
        let n = 2;
        let m = 5;
        let g = mmm_cdag(n);
        let opt = optimal_io(&g, m);
        let bound = crate::schedule::mmm_io_lower_bound(n, m);
        assert!(
            opt.q as f64 >= bound,
            "optimal {} below the symbolic bound {bound}",
            opt.q
        );
        // compulsory traffic: all inputs + all outputs
        assert!(opt.q >= (g.inputs().len()) as u64);
    }

    #[test]
    fn more_memory_weakly_improves_optimal() {
        let g = fig2b_cdag(3); // 9 vertices, small state space
        let q3 = optimal_io(&g, 3).q;
        let q4 = optimal_io(&g, 4).q;
        assert!(q4 <= q3);
        // compulsory traffic only once everything fits
        let q9 = optimal_io(&g, 9).q;
        assert_eq!(q9, (g.inputs().len() + g.outputs().len()) as u64);
    }

    #[test]
    #[should_panic(expected = "20 vertices")]
    fn large_graph_rejected() {
        let _ = optimal_io(&mmm_cdag(3), 8);
    }
}
