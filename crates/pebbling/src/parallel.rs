//! The parallel red-blue pebble game (Section 5).
//!
//! `P` processors each own `M` red pebbles of their own "hue". Rules change
//! in two ways relative to the sequential game:
//!
//! 1. **compute** — requires all direct predecessors to hold red pebbles of
//!    *this processor's* hue (no sharing of fast memory);
//! 2. **load** — a red pebble of any hue may be placed on a vertex that
//!    already holds *any* pebble (red of another hue or blue); every load
//!    costs one I/O operation *for the loading processor*.
//!
//! From a single processor's view data is either local or remote, with
//! uniform remote cost — exactly the machine model the paper's parallel
//! lower bound (Lemma 9) is stated in.

use crate::cdag::{CDag, VertexId};
use crate::game::Move;

/// A move annotated with the processor executing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PMove {
    /// Executing processor.
    pub proc: usize,
    /// The underlying pebble-game move.
    pub mv: Move,
}

/// Rule violation in the parallel game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParallelGameError {
    /// Load of a vertex that holds no pebble of any hue.
    LoadFromNowhere {
        /// Loading processor.
        proc: usize,
        /// Vertex in question.
        vertex: VertexId,
    },
    /// Compute with a predecessor lacking this processor's red pebble.
    MissingLocalPredecessor {
        /// Computing processor.
        proc: usize,
        /// Vertex being computed.
        vertex: VertexId,
        /// The missing predecessor.
        missing: VertexId,
    },
    /// A processor exceeded its `M` red pebbles.
    RedBudgetExceeded {
        /// Offending processor.
        proc: usize,
    },
    /// Store without a local red pebble.
    StoreWithoutRed {
        /// Storing processor.
        proc: usize,
        /// Vertex in question.
        vertex: VertexId,
    },
    /// Discard of an absent pebble.
    DiscardMissing {
        /// Processor attempting the discard.
        proc: usize,
        /// Vertex in question.
        vertex: VertexId,
    },
}

/// Per-processor and aggregate results of a parallel pebbling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelGameStats {
    /// I/O operations (loads + stores) per processor.
    pub q_per_proc: Vec<u64>,
    /// Compute operations per processor.
    pub computes_per_proc: Vec<u64>,
    /// Whether all outputs hold blue pebbles at the end.
    pub complete: bool,
}

impl ParallelGameStats {
    /// Max per-processor I/O — the parallel cost measure of Lemma 9.
    pub fn q_max(&self) -> u64 {
        self.q_per_proc.iter().copied().max().unwrap_or(0)
    }

    /// Total I/O across processors.
    pub fn q_total(&self) -> u64 {
        self.q_per_proc.iter().sum()
    }
}

/// Execute a parallel pebbling sequence with `p` processors of `m` red
/// pebbles each, validating every rule.
pub fn execute_parallel(
    g: &CDag,
    moves: &[PMove],
    p: usize,
    m: usize,
) -> Result<ParallelGameStats, ParallelGameError> {
    let n = g.len();
    let mut red = vec![vec![false; n]; p]; // red[proc][vertex]
    let mut red_count = vec![0usize; p];
    let mut blue = vec![false; n];
    for v in g.inputs() {
        blue[v as usize] = true;
    }
    let mut stats = ParallelGameStats {
        q_per_proc: vec![0; p],
        computes_per_proc: vec![0; p],
        complete: false,
    };

    for &PMove { proc, mv } in moves {
        assert!(proc < p, "move references processor {proc} out of {p}");
        match mv {
            Move::Load(v) => {
                let any_pebble = blue[v as usize] || (0..p).any(|q| red[q][v as usize]);
                if !any_pebble {
                    return Err(ParallelGameError::LoadFromNowhere { proc, vertex: v });
                }
                if !red[proc][v as usize] {
                    red_count[proc] += 1;
                    if red_count[proc] > m {
                        return Err(ParallelGameError::RedBudgetExceeded { proc });
                    }
                    red[proc][v as usize] = true;
                }
                stats.q_per_proc[proc] += 1;
            }
            Move::Store(v) => {
                if !red[proc][v as usize] {
                    return Err(ParallelGameError::StoreWithoutRed { proc, vertex: v });
                }
                blue[v as usize] = true;
                stats.q_per_proc[proc] += 1;
            }
            Move::Compute(v) => {
                for &pr in g.preds(v) {
                    if !red[proc][pr as usize] {
                        return Err(ParallelGameError::MissingLocalPredecessor {
                            proc,
                            vertex: v,
                            missing: pr,
                        });
                    }
                }
                if !red[proc][v as usize] {
                    red_count[proc] += 1;
                    if red_count[proc] > m {
                        return Err(ParallelGameError::RedBudgetExceeded { proc });
                    }
                    red[proc][v as usize] = true;
                }
                stats.computes_per_proc[proc] += 1;
            }
            Move::DiscardRed(v) => {
                if !red[proc][v as usize] {
                    return Err(ParallelGameError::DiscardMissing { proc, vertex: v });
                }
                red[proc][v as usize] = false;
                red_count[proc] -= 1;
            }
            Move::DiscardBlue(v) => {
                if !blue[v as usize] {
                    return Err(ParallelGameError::DiscardMissing { proc, vertex: v });
                }
                blue[v as usize] = false;
            }
        }
    }
    stats.complete = g.outputs().iter().all(|&v| blue[v as usize]);
    Ok(stats)
}

/// Build a simple owner-computes parallel schedule: compute vertices are
/// assigned to processors by `owner(v)`, each processor pebbles its vertices
/// in global topological order, loading remote predecessors on demand
/// (Belady-free: discards everything not needed by its own next vertex is
/// omitted; uses generous `m`).
///
/// Intended for demonstrating the parallel game on small graphs; the
/// schedule is valid as long as every processor's working set fits in `m`.
pub fn owner_computes_schedule(
    g: &CDag,
    p: usize,
    owner: impl Fn(VertexId) -> usize,
) -> Vec<PMove> {
    let mut moves = Vec::new();
    let mut local: Vec<std::collections::HashSet<VertexId>> =
        vec![std::collections::HashSet::new(); p];
    let mut has_any: Vec<bool> = vec![false; g.len()];
    for v in g.inputs() {
        has_any[v as usize] = true; // blue pebble
    }
    for v in g.topological_order() {
        if g.preds(v).is_empty() {
            continue;
        }
        let proc = owner(v);
        assert!(proc < p);
        for &pr in g.preds(v) {
            if !local[proc].contains(&pr) {
                debug_assert!(has_any[pr as usize], "predecessor has no pebble anywhere");
                moves.push(PMove {
                    proc,
                    mv: Move::Load(pr),
                });
                local[proc].insert(pr);
            }
        }
        moves.push(PMove {
            proc,
            mv: Move::Compute(v),
        });
        local[proc].insert(v);
        has_any[v as usize] = true;
        if g.succs(v).is_empty() {
            moves.push(PMove {
                proc,
                mv: Move::Store(v),
            });
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fig2b_cdag, mmm_cdag};

    #[test]
    fn two_procs_split_vector_op() {
        // fig2b: c[i] = f(a[i], b[i]); procs split by parity
        let n = 8;
        let g = fig2b_cdag(n);
        let moves = owner_computes_schedule(&g, 2, |v| (v as usize) % 2);
        let stats = execute_parallel(&g, &moves, 2, 16).unwrap();
        assert!(stats.complete);
        // each compute loads its two private inputs: Q >= 2 * (n/2) per proc
        for q in &stats.q_per_proc {
            assert!(*q >= n as u64, "q={q}");
        }
    }

    #[test]
    fn parallel_mmm_owner_computes() {
        let n = 3;
        let g = mmm_cdag(n);
        let p = 3;
        // split C chains by (i*n+j) % p; a chain must stay on one proc
        // because each C(i,j)#k feeds C(i,j)#k+1.
        let moves = owner_computes_schedule(&g, p, |v| {
            let label_owner = (v as usize) % p;
            // inputs are never passed to owner(); compute vertices are the
            // C chain: id layout = 2n^2 + (i*n+j)*n + k
            let base = 2 * n * n;
            if (v as usize) >= base {
                ((v as usize - base) / n) % p
            } else {
                label_owner
            }
        });
        let stats = execute_parallel(&g, &moves, p, 64).unwrap();
        assert!(stats.complete);
        assert_eq!(
            stats.computes_per_proc.iter().sum::<u64>() as usize,
            n * n * n
        );
    }

    #[test]
    fn compute_requires_local_hue() {
        // proc 1 cannot compute with proc 0's pebbles
        let mut g = CDag::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b);
        let moves = vec![
            PMove {
                proc: 0,
                mv: Move::Load(a),
            },
            PMove {
                proc: 1,
                mv: Move::Compute(b),
            },
        ];
        let err = execute_parallel(&g, &moves, 2, 4).unwrap_err();
        assert_eq!(
            err,
            ParallelGameError::MissingLocalPredecessor {
                proc: 1,
                vertex: b,
                missing: a
            }
        );
    }

    #[test]
    fn remote_red_enables_load() {
        // proc 0 computes b; proc 1 may then load b from proc 0's red
        // pebble even though b has no blue pebble.
        let mut g = CDag::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        let moves = vec![
            PMove {
                proc: 0,
                mv: Move::Load(a),
            },
            PMove {
                proc: 0,
                mv: Move::Compute(b),
            },
            PMove {
                proc: 1,
                mv: Move::Load(b),
            },
            PMove {
                proc: 1,
                mv: Move::Compute(c),
            },
            PMove {
                proc: 1,
                mv: Move::Store(c),
            },
        ];
        let stats = execute_parallel(&g, &moves, 2, 4).unwrap();
        assert!(stats.complete);
        assert_eq!(stats.q_per_proc, vec![1, 2]);
    }

    #[test]
    fn load_from_nowhere_rejected() {
        let mut g = CDag::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b);
        let err = execute_parallel(
            &g,
            &[PMove {
                proc: 0,
                mv: Move::Load(b),
            }],
            1,
            4,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ParallelGameError::LoadFromNowhere { proc: 0, vertex: b }
        );
    }

    #[test]
    fn per_proc_budget_is_private() {
        // with m=2 each, two procs can together hold 4 red pebbles
        let g = fig2b_cdag(2);
        let moves = owner_computes_schedule(&g, 2, |v| (v as usize) % 2);
        // each proc's working set is 3 (two inputs + result) -> m=3 works
        let stats = execute_parallel(&g, &moves, 2, 3).unwrap();
        assert!(stats.complete);
        // but m=2 must fail for one of the computes
        assert!(matches!(
            execute_parallel(&g, &moves, 2, 2),
            Err(ParallelGameError::RedBudgetExceeded { .. })
        ));
    }

    #[test]
    fn q_max_and_total() {
        let stats = ParallelGameStats {
            q_per_proc: vec![3, 7, 5],
            computes_per_proc: vec![1, 1, 1],
            complete: true,
        };
        assert_eq!(stats.q_max(), 7);
        assert_eq!(stats.q_total(), 15);
    }
}
