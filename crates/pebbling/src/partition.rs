//! X-partitions (Section 2.3.3) and the Lemma 1/2 bound plumbing.
//!
//! An X-partition splits the computation into disjoint subcomputations with
//! (a) no cyclic dependencies between them and (b) dominator and minimum
//! sets of size at most `X`. Any I/O-optimal schedule induces one, which is
//! what turns pebbling arguments into lower bounds.

use crate::cdag::{CDag, VertexId};
use crate::dominator::{min_dominator_size, minimum_set};

/// A candidate X-partition: ordered subcomputations over a cDAG.
#[derive(Clone, Debug)]
pub struct XPartition {
    /// The subcomputations `V_1, ..., V_s` (compute vertices only).
    pub subsets: Vec<Vec<VertexId>>,
}

/// Why a candidate partition is not a valid X-partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// A vertex appears in two subcomputations.
    NotDisjoint(VertexId),
    /// A compute vertex is missing from all subcomputations.
    NotCovering(VertexId),
    /// An input vertex appears in a subcomputation.
    ContainsInput(VertexId),
    /// The quotient graph of subcomputations has a cycle.
    CyclicDependency {
        /// Index of one subcomputation on the cycle.
        first: usize,
        /// Index of another subcomputation on the cycle.
        second: usize,
    },
    /// A dominator set exceeds `X`.
    DominatorTooLarge {
        /// Index of the offending subcomputation.
        subset: usize,
        /// Its minimum dominator size.
        size: usize,
    },
    /// A minimum set exceeds `X`.
    MinimumTooLarge {
        /// Index of the offending subcomputation.
        subset: usize,
        /// Its minimum-set size.
        size: usize,
    },
}

impl XPartition {
    /// Number of subcomputations `s`.
    pub fn len(&self) -> usize {
        self.subsets.len()
    }

    /// True iff the partition has no subcomputations.
    pub fn is_empty(&self) -> bool {
        self.subsets.is_empty()
    }

    /// Size of the largest subcomputation.
    pub fn v_max(&self) -> usize {
        self.subsets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Validate this partition as an X-partition of `g` for the given `x`.
    pub fn validate(&self, g: &CDag, x: usize) -> Result<(), PartitionError> {
        let n = g.len();
        let mut owner = vec![usize::MAX; n];
        for (idx, sub) in self.subsets.iter().enumerate() {
            for &v in sub {
                if g.preds(v).is_empty() {
                    return Err(PartitionError::ContainsInput(v));
                }
                if owner[v as usize] != usize::MAX {
                    return Err(PartitionError::NotDisjoint(v));
                }
                owner[v as usize] = idx;
            }
        }
        for v in g.compute_vertices() {
            if owner[v as usize] == usize::MAX {
                return Err(PartitionError::NotCovering(v));
            }
        }
        // acyclicity of the quotient graph
        let s = self.subsets.len();
        let mut qadj = vec![Vec::new(); s];
        let mut indeg = vec![0usize; s];
        let mut seen = std::collections::HashSet::new();
        for v in g.compute_vertices() {
            let ov = owner[v as usize];
            for &succ in g.succs(v) {
                let os = owner[succ as usize];
                if os != usize::MAX && os != ov && seen.insert((ov, os)) {
                    qadj[ov].push(os);
                    indeg[os] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..s).filter(|&i| indeg[i] == 0).collect();
        let mut popped = 0;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            popped += 1;
            for &w in &qadj[u] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if popped != s {
            // find two subsets with remaining in-degree for the report
            let cyclic: Vec<usize> = (0..s).filter(|&i| indeg[i] > 0).collect();
            return Err(PartitionError::CyclicDependency {
                first: cyclic[0],
                second: *cyclic.get(1).unwrap_or(&cyclic[0]),
            });
        }
        // dominator / minimum sizes
        for (idx, sub) in self.subsets.iter().enumerate() {
            let dom = min_dominator_size(g, sub);
            if dom > x {
                return Err(PartitionError::DominatorTooLarge {
                    subset: idx,
                    size: dom,
                });
            }
            let min = minimum_set(g, sub).len();
            if min > x {
                return Err(PartitionError::MinimumTooLarge {
                    subset: idx,
                    size: min,
                });
            }
        }
        Ok(())
    }
}

/// Build an X-partition greedily: walk a topological order and open a new
/// subcomputation whenever adding the next vertex would push the dominator
/// or minimum set above `x`.
pub fn greedy_partition(g: &CDag, x: usize) -> XPartition {
    let mut subsets: Vec<Vec<VertexId>> = Vec::new();
    let mut current: Vec<VertexId> = Vec::new();
    for v in g.topological_order() {
        if g.preds(v).is_empty() {
            continue;
        }
        current.push(v);
        // conservative check: recompute exact dominator/min sizes
        let dom = min_dominator_size(g, &current);
        let min = minimum_set(g, &current).len();
        if dom > x || min > x {
            current.pop();
            if !current.is_empty() {
                subsets.push(std::mem::take(&mut current));
            }
            current.push(v);
            // a single vertex can itself violate X if its in-degree > X;
            // the caller must choose X >= max in-degree.
            let dom1 = min_dominator_size(g, &current);
            assert!(
                dom1 <= x,
                "X={x} smaller than a single vertex dominator ({dom1})"
            );
        }
    }
    if !current.is_empty() {
        subsets.push(current);
    }
    XPartition { subsets }
}

/// Lemma 1: `Q >= n_compute / rho` with `rho = v_max / (X - M)`.
///
/// `v_max` must upper-bound the largest subcomputation over *all* valid
/// X-partitions for the chosen `x`; callers obtain it analytically (e.g.
/// from the `iobound` crate) or from structural arguments.
pub fn lemma1_bound(n_compute: usize, v_max: usize, x: usize, m: usize) -> f64 {
    assert!(x > m, "Lemma 1 requires X > M");
    assert!(v_max > 0);
    let rho = v_max as f64 / (x - m) as f64;
    n_compute as f64 / rho
}

/// Lemma from [Kwasniewski et al. 2019] (quoted in Section 2.3.3): an
/// I/O-optimal schedule performing `q` I/O operations induces an X-partition
/// of size at most `(q + x - m)/(x - m)`. Inverted, a partition-size lower
/// bound `s_min` yields `q >= (s_min - 1) * (x - m)`.
pub fn schedule_size_bound(s_min: usize, x: usize, m: usize) -> u64 {
    assert!(x > m);
    (s_min.saturating_sub(1) as u64) * (x - m) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{lu_cdag, mmm_cdag};
    use crate::game::{execute, greedy_schedule};

    #[test]
    fn greedy_partition_validates_on_mmm() {
        let g = mmm_cdag(3);
        for x in [4, 8, 16] {
            let p = greedy_partition(&g, x);
            p.validate(&g, x).unwrap();
            assert!(p.v_max() >= 1);
        }
    }

    #[test]
    fn greedy_partition_validates_on_lu() {
        let (g, _) = lu_cdag(4);
        let p = greedy_partition(&g, 8);
        p.validate(&g, 8).unwrap();
    }

    #[test]
    fn validation_catches_overlap() {
        let g = mmm_cdag(2);
        let v = g.compute_vertices();
        let p = XPartition {
            subsets: vec![v.clone(), vec![v[0]]],
        };
        assert_eq!(p.validate(&g, 100), Err(PartitionError::NotDisjoint(v[0])));
    }

    #[test]
    fn validation_catches_missing_vertex() {
        let g = mmm_cdag(2);
        let mut v = g.compute_vertices();
        let dropped = v.pop().unwrap();
        let p = XPartition { subsets: vec![v] };
        assert_eq!(
            p.validate(&g, 100),
            Err(PartitionError::NotCovering(dropped))
        );
    }

    #[test]
    fn validation_catches_input_in_subset() {
        let g = mmm_cdag(2);
        let mut v = g.compute_vertices();
        let input = g.inputs()[0];
        v.push(input);
        let p = XPartition { subsets: vec![v] };
        assert_eq!(
            p.validate(&g, 100),
            Err(PartitionError::ContainsInput(input))
        );
    }

    #[test]
    fn validation_catches_cycles() {
        // path a -> b -> c -> d (a input); put {b, d} and {c} in different
        // subsets: b before c, c before d => quotient cycle
        let mut g = CDag::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        let d = g.add_vertex("d");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, d);
        let p = XPartition {
            subsets: vec![vec![b, d], vec![c]],
        };
        assert!(matches!(
            p.validate(&g, 100),
            Err(PartitionError::CyclicDependency { .. })
        ));
    }

    #[test]
    fn validation_catches_dominator_overflow() {
        let g = mmm_cdag(3);
        let p = XPartition {
            subsets: vec![g.compute_vertices()],
        };
        // whole computation needs all 18 inputs; X=4 must fail
        assert!(matches!(
            p.validate(&g, 4),
            Err(PartitionError::DominatorTooLarge { .. })
        ));
    }

    #[test]
    fn lemma1_numbers() {
        // n=8 compute vertices, v_max=4, X=6, M=2 -> rho=1 -> Q >= 8
        assert_eq!(lemma1_bound(8, 4, 6, 2), 8.0);
    }

    #[test]
    fn schedule_q_dominates_lemma1_bound_on_mmm() {
        // End-to-end consistency: an actual valid schedule's Q must beat
        // any Lemma-1 bound computed from a *valid* v_max upper bound.
        let n = 3;
        let g = mmm_cdag(n);
        let m = 8;
        let moves = greedy_schedule(&g, m);
        let q = execute(&g, &moves, m).unwrap().q();
        // For MMM, |V_max| <= (X/2)^... use the known psi(X): with X red
        // pebbles one can compute at most (X/2)^(3/2)... conservatively use
        // the loose-but-valid v_max = X^2 (anything >= true max keeps the
        // bound sound, just weaker).
        let x = 2 * m;
        let bound = lemma1_bound(n * n * n, x * x, x, m);
        assert!(q as f64 >= bound, "q={q} < bound={bound}");
    }

    #[test]
    fn schedule_size_bound_inverts_lemma() {
        assert_eq!(schedule_size_bound(5, 10, 4), 24);
        assert_eq!(schedule_size_bound(1, 10, 4), 0);
    }
}
