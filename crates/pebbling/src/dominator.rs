//! Minimum dominator sets and minimum sets (Section 2.3.2).
//!
//! `Dom(V_h)` — every path from a graph input into `V_h` must contain a
//! vertex of the set. The *minimum* dominator set size equals (by Menger's
//! theorem) the minimum vertex cut separating the inputs from `V_h`, which
//! we compute exactly with Dinic's max-flow on the vertex-split graph.
//!
//! `Min(V_h)` — the vertices of `V_h` with no direct successor inside `V_h`.

use std::collections::VecDeque;

use crate::cdag::{CDag, VertexId};

/// Compute `Min(V_h)`: members of `subset` without successors in `subset`.
pub fn minimum_set(g: &CDag, subset: &[VertexId]) -> Vec<VertexId> {
    let mut in_subset = vec![false; g.len()];
    for &v in subset {
        in_subset[v as usize] = true;
    }
    subset
        .iter()
        .copied()
        .filter(|&v| !g.succs(v).iter().any(|&s| in_subset[s as usize]))
        .collect()
}

/// Size of the minimum dominator set of `subset` (exact, via max-flow).
///
/// Every vertex has unit capacity (vertex-disjoint paths); the answer is the
/// max number of vertex-disjoint input-to-subset paths. Vertices of `subset`
/// itself may serve as dominators (capacity 1), matching the definition used
/// in the paper where `Dom(V_h)` may intersect `V_h`.
pub fn min_dominator_size(g: &CDag, subset: &[VertexId]) -> usize {
    if subset.is_empty() {
        return 0;
    }
    let n = g.len();
    let mut in_subset = vec![false; n];
    for &v in subset {
        in_subset[v as usize] = true;
    }

    // Vertex split: node 2v = v_in, 2v+1 = v_out, edge v_in->v_out cap 1.
    // Original edge (u, w): u_out -> w_in cap INF.
    // Source S -> v_in for every graph input v, cap INF.
    // v_out -> sink T for v in subset... but careful: paths must *enter*
    // V_h; a path ending at the first subset vertex it reaches suffices.
    // Connecting every subset vertex's v_out to T would let flow pass
    // *through* one subset vertex into another and count twice; capacity 1
    // on the split edge prevents reuse, and extra flow entering deeper
    // subset vertices still corresponds to a distinct vertex-disjoint path
    // entering V_h, which a dominator must also intercept. We connect
    // v_in -> T for subset vertices instead, so that a subset vertex used
    // as a path endpoint can still be cut via its own split edge:
    // S -...-> v_in -> v_out(cap 1 before T)? Simplest correct reduction:
    // subset vertex v gets edge v_out -> T with cap INF, and its split edge
    // keeps cap 1 so cutting v itself is always available.
    let s = 2 * n;
    let t = 2 * n + 1;
    let mut dinic = Dinic::new(2 * n + 2);
    const INF: u32 = u32::MAX / 2;
    for v in 0..n {
        dinic.add_edge(2 * v, 2 * v + 1, 1);
    }
    for v in 0..n as VertexId {
        for &w in g.succs(v) {
            dinic.add_edge(2 * v as usize + 1, 2 * w as usize, INF);
        }
    }
    for v in g.inputs() {
        dinic.add_edge(s, 2 * v as usize, INF);
    }
    for &v in subset {
        dinic.add_edge(2 * v as usize + 1, t, INF);
    }
    dinic.max_flow(s, t) as usize
}

/// Dinic's max-flow on a unit/INF-capacity graph (small graphs only).
struct Dinic {
    // adjacency: per node, list of edge indices
    adj: Vec<Vec<usize>>,
    // edges stored as (to, cap); reverse edge at index^1
    to: Vec<usize>,
    cap: Vec<u32>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, u: usize, v: usize, c: u32) {
        let e = self.to.len();
        self.to.push(v);
        self.cap.push(c);
        self.adj[u].push(e);
        self.to.push(u);
        self.cap.push(0);
        self.adj[v].push(e + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut q = VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &e in &self.adj[u] {
                if self.cap[e] > 0 && self.level[self.to[e]] < 0 {
                    self.level[self.to[e]] = self.level[u] + 1;
                    q.push_back(self.to[e]);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: u32) -> u32 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.adj[u].len() {
            let e = self.adj[u][self.iter[u]];
            let v = self.to[e];
            if self.cap[e] > 0 && self.level[v] == self.level[u] + 1 {
                let d = self.dfs(v, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> u32 {
        let mut flow = 0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, u32::MAX / 2);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{lu_cdag, mmm_cdag};

    #[test]
    fn minimum_set_excludes_internal_vertices() {
        // chain a -> b -> c; subset {b, c}: only c is in Min
        let mut g = CDag::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        assert_eq!(minimum_set(&g, &[b, c]), vec![c]);
        assert_eq!(minimum_set(&g, &[b]), vec![b]);
    }

    #[test]
    fn dominator_of_single_vertex_is_its_cut() {
        // diamond: a -> b, a -> c, b -> d, c -> d; Dom({d}) = {d} or {b,c}
        // or {a}: minimum is 1 (cut at a or d).
        let mut g = CDag::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        let d = g.add_vertex("d");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        assert_eq!(min_dominator_size(&g, &[d]), 1);
        // {b, c} needs to intercept two vertex-disjoint paths? No: both
        // paths go through a, so cutting a suffices.
        assert_eq!(min_dominator_size(&g, &[b, c]), 1);
    }

    #[test]
    fn independent_inputs_need_independent_dominators() {
        // x1 -> y1, x2 -> y2: Dom({y1, y2}) = 2
        let mut g = CDag::new();
        let x1 = g.add_vertex("x1");
        let y1 = g.add_vertex("y1");
        let x2 = g.add_vertex("x2");
        let y2 = g.add_vertex("y2");
        g.add_edge(x1, y1);
        g.add_edge(x2, y2);
        assert_eq!(min_dominator_size(&g, &[y1, y2]), 2);
        assert_eq!(min_dominator_size(&g, &[y1]), 1);
    }

    #[test]
    fn empty_subset_has_empty_dominator() {
        let g = mmm_cdag(2);
        assert_eq!(min_dominator_size(&g, &[]), 0);
    }

    #[test]
    fn input_vertices_dominate_themselves() {
        let mut g = CDag::new();
        let x = g.add_vertex("x");
        let y = g.add_vertex("y");
        g.add_edge(x, y);
        // subset containing an input: the input itself is a length-0 path
        assert_eq!(min_dominator_size(&g, &[x]), 1);
        assert_eq!(min_dominator_size(&g, &[x, y]), 1);
    }

    #[test]
    fn mmm_single_product_dominator() {
        // Under the literal path-cover definition a subset vertex may
        // dominate itself, so any singleton has Dom_min = 1.
        let g = mmm_cdag(2);
        let c0 = g.find("C(0,0)#0").unwrap();
        assert_eq!(min_dominator_size(&g, &[c0]), 1);
        // The two-vertex chain {C(0,0)#0, C(0,0)#1}: both are entry
        // vertices (each consumes graph inputs directly), so the cheapest
        // cover is the chain itself — size 2. Covering from outside would
        // need all four A/B inputs.
        let c1 = g.find("C(0,0)#1").unwrap();
        assert_eq!(min_dominator_size(&g, &[c0, c1]), 2);
    }

    #[test]
    fn lu_full_graph_dominated_by_inputs() {
        let (g, groups) = lu_cdag(3);
        let all_compute: Vec<VertexId> = groups
            .s1
            .iter()
            .chain(&groups.s2)
            .flatten()
            .copied()
            .collect();
        let dom = min_dominator_size(&g, &all_compute);
        // The whole computation is dominated by the n^2 = 9 inputs; the
        // exact minimum equals the max number of vertex-disjoint
        // input-to-compute paths, which is at least the n(n-1) = 6 paths
        // A(i,j) -> first-update(i,j) for i or j > 0.
        assert!(dom <= 9, "dominator larger than the input set: {dom}");
        assert!(dom >= 6, "dominator unreasonably small: {dom}");
    }

    #[test]
    fn dominator_monotone_under_subset_growth_is_not_required_but_bounded() {
        // sanity: Dom of a subset never exceeds |inputs| or |subset| paths
        let g = mmm_cdag(3);
        let outputs = g.outputs();
        let dom = min_dominator_size(&g, &outputs);
        assert!(dom <= g.inputs().len());
        assert!(dom >= 1);
    }
}
