//! I/O-efficient pebbling orders.
//!
//! Belady eviction ([`crate::game::greedy_schedule`]) turns any compute
//! order into a valid schedule; the *order* determines locality. This module
//! provides the blocked orders that achieve near-optimal I/O:
//!
//! * [`mmm_tiled_order`] — cube-tiled MMM traversal; with tile `t ≈ √(M/3)`
//!   its I/O approaches the `2N³/√M` optimum,
//! * [`lu_right_looking_order`] — the natural right-looking LU order of
//!   Figure 1 (the order COnfLUX's local computations follow).

use crate::builders::LuVertexGroups;
use crate::cdag::VertexId;

/// Vertex id of `A(i,k)` in [`crate::builders::mmm_cdag`]`(n)`.
pub fn mmm_a_id(n: usize, i: usize, k: usize) -> VertexId {
    (i * n + k) as VertexId
}

/// Vertex id of `B(k,j)` in [`crate::builders::mmm_cdag`]`(n)`.
pub fn mmm_b_id(n: usize, k: usize, j: usize) -> VertexId {
    (n * n + k * n + j) as VertexId
}

/// Vertex id of the partial sum `C(i,j)#k` in
/// [`crate::builders::mmm_cdag`]`(n)`.
pub fn mmm_c_id(n: usize, i: usize, j: usize, k: usize) -> VertexId {
    (2 * n * n + (i * n + j) * n + k) as VertexId
}

/// Compute order traversing `C` in `t x t x t` tiles: for each `(it, jt)`
/// output tile, sweep the full `k` dimension tile by tile before moving on,
/// so each `A`/`B` tile is loaded once per output tile.
///
/// The `k` dimension must advance innermost *within a `(i, j) x k`-tile* to
/// respect the partial-sum chain.
pub fn mmm_tiled_order(n: usize, t: usize) -> Vec<VertexId> {
    assert!(t >= 1);
    let mut order = Vec::with_capacity(n * n * n);
    let nt = n.div_ceil(t);
    for it in 0..nt {
        for jt in 0..nt {
            for kt in 0..nt {
                for i in it * t..((it + 1) * t).min(n) {
                    for j in jt * t..((jt + 1) * t).min(n) {
                        for k in kt * t..((kt + 1) * t).min(n) {
                            order.push(mmm_c_id(n, i, j, k));
                        }
                    }
                }
            }
        }
    }
    order
}

/// The natural right-looking LU compute order: for each elimination step
/// `k`, all of `S1(k)` (column scaling) then all of `S2(k)` (trailing
/// update).
pub fn lu_right_looking_order(groups: &LuVertexGroups) -> Vec<VertexId> {
    let mut order = Vec::new();
    for (s1, s2) in groups.s1.iter().zip(&groups.s2) {
        order.extend_from_slice(s1);
        order.extend_from_slice(s2);
    }
    order
}

/// The classic sequential-MMM I/O lower bound `2n³/√M - 3M` of
/// Kwasniewski et al. (SC'19), used as the yardstick for tiled schedules.
pub fn mmm_io_lower_bound(n: usize, m: usize) -> f64 {
    let n3 = (n * n * n) as f64;
    (2.0 * n3 / (m as f64).sqrt() - 3.0 * m as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{lu_cdag, mmm_cdag};
    use crate::game::{execute, greedy_schedule_with_order};

    #[test]
    fn id_helpers_match_labels() {
        let n = 4;
        let g = mmm_cdag(n);
        assert_eq!(g.label(mmm_a_id(n, 2, 3)), "A(2,3)");
        assert_eq!(g.label(mmm_b_id(n, 1, 0)), "B(1,0)");
        assert_eq!(g.label(mmm_c_id(n, 3, 2, 1)), "C(3,2)#1");
    }

    #[test]
    fn tiled_order_is_topological_for_chains() {
        // within each (i, j), k must be increasing in the order
        let n = 6;
        for t in [1, 2, 3, 4] {
            let order = mmm_tiled_order(n, t);
            assert_eq!(order.len(), n * n * n, "t={t}");
            let mut last_k = vec![vec![-1i64; n]; n];
            let base = (2 * n * n) as i64;
            for &v in &order {
                let rest = v as i64 - base;
                let k = rest % n as i64;
                let ij = rest / n as i64;
                let (i, j) = ((ij / n as i64) as usize, (ij % n as i64) as usize);
                assert_eq!(k, last_k[i][j] + 1, "chain order broken at t={t}");
                last_k[i][j] = k;
            }
        }
    }

    #[test]
    fn tiled_schedule_valid_and_better_than_untiled() {
        let n = 8;
        let m = 14; // small memory to force eviction traffic
        let g = mmm_cdag(n);
        let t = 2; // ~ sqrt(m/3)
        let tiled = greedy_schedule_with_order(&g, m, &mmm_tiled_order(n, t));
        let q_tiled = execute(&g, &tiled, m).unwrap().q();
        let naive = greedy_schedule_with_order(&g, m, &mmm_tiled_order(n, n));
        let q_naive = execute(&g, &naive, m).unwrap().q();
        assert!(
            q_tiled < q_naive,
            "tiling should reduce I/O: tiled={q_tiled} naive={q_naive}"
        );
    }

    #[test]
    fn tiled_schedule_within_constant_of_lower_bound() {
        let n = 8;
        let m = 14;
        let g = mmm_cdag(n);
        let tiled = greedy_schedule_with_order(&g, m, &mmm_tiled_order(n, 2));
        let q = execute(&g, &tiled, m).unwrap().q() as f64;
        let lb = mmm_io_lower_bound(n, m);
        assert!(q >= lb, "schedule beats the lower bound: q={q} lb={lb}");
        assert!(
            q <= 6.0 * lb,
            "schedule too far from optimal: q={q} lb={lb}"
        );
    }

    #[test]
    fn lu_right_looking_schedule_valid() {
        let n = 6;
        let (g, groups) = lu_cdag(n);
        let order = lu_right_looking_order(&groups);
        assert_eq!(order.len(), g.compute_vertices().len());
        let m = 20;
        let moves = greedy_schedule_with_order(&g, m, &order);
        let stats = execute(&g, &moves, m).unwrap();
        assert!(stats.complete);
    }

    #[test]
    fn lu_q_exceeds_s1_count() {
        // Lemma 6 consequence: rho_S1 <= 1, so Q >= |S1| from loads of the
        // out-degree-one A(i,k) inputs alone; any valid schedule must obey.
        let n = 6;
        let (g, groups) = lu_cdag(n);
        let order = lu_right_looking_order(&groups);
        let m = 20;
        let moves = greedy_schedule_with_order(&g, m, &order);
        let q = execute(&g, &moves, m).unwrap().q() as usize;
        let s1_count = n * (n - 1) / 2;
        assert!(q >= s1_count, "q={q} s1={s1_count}");
    }
}
