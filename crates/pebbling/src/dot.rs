//! Graphviz DOT export for cDAGs — renders the paper's Figure 1/4 style
//! diagrams (inputs as boxes, compute vertices as circles, optional
//! highlighting of a subcomputation and its dominator).

use std::fmt::Write as _;

use crate::cdag::{CDag, VertexId};

/// Options controlling the DOT rendering.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Vertices to fill (e.g. one subcomputation `V_h`).
    pub highlight: Vec<VertexId>,
    /// Vertices to outline in bold (e.g. `Dom(V_h)`).
    pub outline: Vec<VertexId>,
    /// Graph title.
    pub title: String,
}

/// Render the cDAG as a DOT digraph.
pub fn to_dot(g: &CDag, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph cdag {{");
    let _ = writeln!(out, "  rankdir=TB;");
    if !opts.title.is_empty() {
        let _ = writeln!(out, "  label=\"{}\";", opts.title.replace('"', "'"));
    }
    let highlight: std::collections::HashSet<_> = opts.highlight.iter().copied().collect();
    let outline: std::collections::HashSet<_> = opts.outline.iter().copied().collect();
    for v in 0..g.len() as VertexId {
        let mut attrs = Vec::new();
        attrs.push(format!("label=\"{}\"", g.label(v).replace('"', "'")));
        if g.preds(v).is_empty() {
            attrs.push("shape=box".to_string());
        } else {
            attrs.push("shape=ellipse".to_string());
        }
        if highlight.contains(&v) {
            attrs.push("style=filled".to_string());
            attrs.push("fillcolor=lightblue".to_string());
        }
        if outline.contains(&v) {
            attrs.push("penwidth=3".to_string());
        }
        let _ = writeln!(out, "  v{} [{}];", v, attrs.join(", "));
    }
    for v in 0..g.len() as VertexId {
        for &s in g.succs(v) {
            let _ = writeln!(out, "  v{v} -> v{s};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{lu_cdag, mmm_cdag};

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let g = mmm_cdag(2);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        for v in 0..g.len() as u32 {
            assert!(dot.contains(&format!("v{v} [")), "missing vertex {v}");
        }
        let edge_count = dot.matches(" -> ").count();
        let expected: usize = (0..g.len() as u32).map(|v| g.succs(v).len()).sum();
        assert_eq!(edge_count, expected);
    }

    #[test]
    fn inputs_are_boxes_computes_are_ellipses() {
        let (g, groups) = lu_cdag(2);
        let dot = to_dot(&g, &DotOptions::default());
        let input = groups.inputs[0];
        let compute = groups.s1[0][0];
        let input_line = dot
            .lines()
            .find(|l| l.contains(&format!("v{input} [")))
            .unwrap();
        assert!(input_line.contains("shape=box"));
        let compute_line = dot
            .lines()
            .find(|l| l.contains(&format!("v{compute} [")))
            .unwrap();
        assert!(compute_line.contains("shape=ellipse"));
    }

    #[test]
    fn highlighting_applies() {
        let (g, groups) = lu_cdag(2);
        let opts = DotOptions {
            highlight: groups.s2[0].clone(),
            outline: groups.inputs.clone(),
            title: "LU n=2".to_string(),
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("penwidth=3"));
        assert!(dot.contains("label=\"LU n=2\""));
    }
}
