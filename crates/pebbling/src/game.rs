//! The sequential red-blue pebble game (Hong & Kung) — executor, validator,
//! and a Belady-eviction greedy scheduler.
//!
//! The game rules (Section 2.3.1):
//! 1. *load*    — place a red pebble on a vertex holding a blue pebble;
//! 2. *store*   — place a blue pebble on a vertex holding a red pebble;
//! 3. *compute* — place a red pebble on a vertex whose direct predecessors
//!    all hold red pebbles;
//! 4. *discard* — remove any pebble.
//!
//! At most `M` red pebbles may be on the graph at any time. Initially all
//! inputs hold blue pebbles; the goal is blue pebbles on all outputs while
//! minimizing the number of loads + stores (`Q`).

use std::collections::{BinaryHeap, VecDeque};

use crate::cdag::{CDag, VertexId};

/// One move of the red-blue pebble game.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// Rule 1: slow -> fast memory.
    Load(VertexId),
    /// Rule 2: fast -> slow memory.
    Store(VertexId),
    /// Rule 3: evaluate a vertex in fast memory.
    Compute(VertexId),
    /// Rule 4a: remove the red pebble.
    DiscardRed(VertexId),
    /// Rule 4b: remove the blue pebble.
    DiscardBlue(VertexId),
}

/// Violation of the game rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GameError {
    /// Load of a vertex without a blue pebble.
    LoadWithoutBlue(VertexId),
    /// Store of a vertex without a red pebble.
    StoreWithoutRed(VertexId),
    /// Compute with some predecessor not red-pebbled.
    MissingPredecessor {
        /// Vertex being computed.
        vertex: VertexId,
        /// The predecessor lacking a red pebble.
        missing: VertexId,
    },
    /// More than `M` red pebbles would be on the graph.
    RedBudgetExceeded {
        /// Vertex whose pebbling exceeded the budget.
        vertex: VertexId,
    },
    /// Discard of a pebble that is not present.
    DiscardMissing(VertexId),
}

/// Result of executing a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GameStats {
    /// Loads performed.
    pub loads: u64,
    /// Stores performed.
    pub stores: u64,
    /// Compute moves performed.
    pub computes: u64,
    /// Whether every output vertex holds a blue pebble at the end.
    pub complete: bool,
}

impl GameStats {
    /// The I/O cost `Q = loads + stores`.
    pub fn q(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Execute `moves` on `g` with `m` red pebbles, validating every rule.
pub fn execute(g: &CDag, moves: &[Move], m: usize) -> Result<GameStats, GameError> {
    let n = g.len();
    let mut red = vec![false; n];
    let mut blue = vec![false; n];
    for v in g.inputs() {
        blue[v as usize] = true;
    }
    let mut red_count = 0usize;
    let mut stats = GameStats {
        loads: 0,
        stores: 0,
        computes: 0,
        complete: false,
    };

    for &mv in moves {
        match mv {
            Move::Load(v) => {
                if !blue[v as usize] {
                    return Err(GameError::LoadWithoutBlue(v));
                }
                if !red[v as usize] {
                    red_count += 1;
                    if red_count > m {
                        return Err(GameError::RedBudgetExceeded { vertex: v });
                    }
                    red[v as usize] = true;
                }
                stats.loads += 1;
            }
            Move::Store(v) => {
                if !red[v as usize] {
                    return Err(GameError::StoreWithoutRed(v));
                }
                blue[v as usize] = true;
                stats.stores += 1;
            }
            Move::Compute(v) => {
                for &p in g.preds(v) {
                    if !red[p as usize] {
                        return Err(GameError::MissingPredecessor {
                            vertex: v,
                            missing: p,
                        });
                    }
                }
                if !red[v as usize] {
                    red_count += 1;
                    if red_count > m {
                        return Err(GameError::RedBudgetExceeded { vertex: v });
                    }
                    red[v as usize] = true;
                }
                stats.computes += 1;
            }
            Move::DiscardRed(v) => {
                if !red[v as usize] {
                    return Err(GameError::DiscardMissing(v));
                }
                red[v as usize] = false;
                red_count -= 1;
            }
            Move::DiscardBlue(v) => {
                if !blue[v as usize] {
                    return Err(GameError::DiscardMissing(v));
                }
                blue[v as usize] = false;
            }
        }
    }
    stats.complete = g.outputs().iter().all(|&v| blue[v as usize]);
    Ok(stats)
}

/// Produce a valid complete pebbling of `g` with `m` red pebbles using a
/// topological compute order and Belady (furthest-next-use) eviction.
///
/// ```
/// use pebbling::{builders::mmm_cdag, game::{execute, greedy_schedule}};
/// let g = mmm_cdag(3);
/// let moves = greedy_schedule(&g, 16);
/// let stats = execute(&g, &moves, 16).unwrap();
/// assert!(stats.complete);
/// assert_eq!(stats.computes, 27); // n³ multiply-accumulates
/// ```
///
/// The returned schedule's `Q` is an *upper bound* on the optimal I/O; for
/// well-blocked orders it is within a constant factor of the lower bounds
/// derived by the `iobound` crate (tested there).
///
/// # Panics
/// Panics if `m` is smaller than `max in-degree + 1` (no valid schedule
/// exists below that).
pub fn greedy_schedule(g: &CDag, m: usize) -> Vec<Move> {
    greedy_schedule_with_order(g, m, &g.topological_order())
}

/// [`greedy_schedule`] with a caller-chosen compute order (must be a
/// topological order of the compute vertices; inputs may be omitted).
pub fn greedy_schedule_with_order(g: &CDag, m: usize, order: &[VertexId]) -> Vec<Move> {
    let n = g.len();
    let max_indeg = (0..n as VertexId)
        .map(|v| g.preds(v).len())
        .max()
        .unwrap_or(0);
    assert!(m > max_indeg, "need at least max in-degree + 1 red pebbles");

    let compute_order: Vec<VertexId> = order
        .iter()
        .copied()
        .filter(|&v| !g.preds(v).is_empty())
        .collect();

    // Position of each compute step, for next-use queries.
    let mut use_times: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
    for (t, &v) in compute_order.iter().enumerate() {
        for &p in g.preds(v) {
            use_times[p as usize].push_back(t);
        }
    }

    let is_output: Vec<bool> = {
        let mut f = vec![false; n];
        for v in g.outputs() {
            f[v as usize] = true;
        }
        f
    };

    let mut red = vec![false; n];
    let mut blue = vec![false; n];
    for v in g.inputs() {
        blue[v as usize] = true;
    }
    let mut red_count = 0usize;
    let mut moves = Vec::new();

    // Max-heap of (next_use, vertex) for eviction. Entries may be stale;
    // validated against `use_times` on pop.
    let mut evict_heap: BinaryHeap<(usize, VertexId)> = BinaryHeap::new();

    let next_use = |use_times: &[VecDeque<usize>], v: VertexId, now: usize| -> usize {
        use_times[v as usize]
            .front()
            .copied()
            .filter(|&t| t >= now)
            .unwrap_or(usize::MAX)
    };

    for (t, &v) in compute_order.iter().enumerate() {
        // Ensure all predecessors are red.
        for &p in g.preds(v) {
            // retire past uses
            while use_times[p as usize].front().is_some_and(|&u| u < t) {
                use_times[p as usize].pop_front();
            }
            if !red[p as usize] {
                debug_assert!(
                    blue[p as usize],
                    "pred neither red nor blue: recompute unsupported"
                );
                make_room(
                    g,
                    m,
                    t,
                    &mut red,
                    &mut blue,
                    &mut red_count,
                    &mut evict_heap,
                    &mut moves,
                    &use_times,
                    &is_output,
                    &next_use,
                );
                moves.push(Move::Load(p));
                red[p as usize] = true;
                red_count += 1;
                evict_heap.push((next_use(&use_times, p, t), p));
            }
        }
        // Room for v itself.
        make_room(
            g,
            m,
            t,
            &mut red,
            &mut blue,
            &mut red_count,
            &mut evict_heap,
            &mut moves,
            &use_times,
            &is_output,
            &next_use,
        );
        moves.push(Move::Compute(v));
        red[v as usize] = true;
        red_count += 1;
        // consume this use from each predecessor
        for &p in g.preds(v) {
            if use_times[p as usize].front() == Some(&t) {
                use_times[p as usize].pop_front();
            }
            // refresh heap entry
            if red[p as usize] {
                evict_heap.push((next_use(&use_times, p, t + 1), p));
            }
        }
        evict_heap.push((next_use(&use_times, v, t + 1), v));
    }

    // Store all outputs still lacking blue pebbles.
    for v in g.outputs() {
        if !blue[v as usize] {
            debug_assert!(red[v as usize]);
            moves.push(Move::Store(v));
            blue[v as usize] = true;
        }
    }
    moves
}

#[allow(clippy::too_many_arguments)]
fn make_room(
    g: &CDag,
    m: usize,
    now: usize,
    red: &mut [bool],
    blue: &mut [bool],
    red_count: &mut usize,
    evict_heap: &mut BinaryHeap<(usize, VertexId)>,
    moves: &mut Vec<Move>,
    use_times: &[VecDeque<usize>],
    is_output: &[bool],
    next_use: &impl Fn(&[VecDeque<usize>], VertexId, usize) -> usize,
) {
    while *red_count >= m {
        // Pop until a non-stale red vertex emerges.
        let (recorded_next, victim) = evict_heap.pop().expect("red pebbles exist but heap empty");
        if !red[victim as usize] {
            continue; // already evicted
        }
        let actual_next = next_use(use_times, victim, now);
        if actual_next != recorded_next {
            evict_heap.push((actual_next, victim)); // stale entry, refresh
            continue;
        }
        // Victim still needed later (or is an unsaved output): store first.
        let needed_later = actual_next != usize::MAX;
        if (needed_later || is_output[victim as usize]) && !blue[victim as usize] {
            moves.push(Move::Store(victim));
            blue[victim as usize] = true;
        }
        moves.push(Move::DiscardRed(victim));
        red[victim as usize] = false;
        *red_count -= 1;
        let _ = g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{lu_cdag, mmm_cdag};

    fn path_graph(n: usize) -> CDag {
        let mut g = CDag::new();
        let vs: Vec<VertexId> = (0..n).map(|i| g.add_vertex(format!("v{i}"))).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    #[test]
    fn manual_schedule_on_path() {
        let g = path_graph(3);
        let moves = vec![
            Move::Load(0),
            Move::Compute(1),
            Move::DiscardRed(0),
            Move::Compute(2),
            Move::Store(2),
        ];
        let stats = execute(&g, &moves, 2).unwrap();
        assert!(stats.complete);
        assert_eq!(stats.q(), 2);
        assert_eq!(stats.computes, 2);
    }

    #[test]
    fn load_without_blue_rejected() {
        let g = path_graph(2);
        let err = execute(&g, &[Move::Load(1)], 2).unwrap_err();
        assert_eq!(err, GameError::LoadWithoutBlue(1));
    }

    #[test]
    fn compute_without_pred_rejected() {
        let g = path_graph(2);
        let err = execute(&g, &[Move::Compute(1)], 2).unwrap_err();
        assert_eq!(
            err,
            GameError::MissingPredecessor {
                vertex: 1,
                missing: 0
            }
        );
    }

    #[test]
    fn red_budget_enforced() {
        let g = path_graph(3);
        let err = execute(&g, &[Move::Load(0), Move::Compute(1), Move::Compute(2)], 2).unwrap_err();
        assert_eq!(err, GameError::RedBudgetExceeded { vertex: 2 });
    }

    #[test]
    fn store_without_red_rejected() {
        let g = path_graph(2);
        let err = execute(&g, &[Move::Store(0)], 2).unwrap_err();
        assert_eq!(err, GameError::StoreWithoutRed(0));
    }

    #[test]
    fn incomplete_without_output_store() {
        let g = path_graph(2);
        let stats = execute(&g, &[Move::Load(0), Move::Compute(1)], 2).unwrap();
        assert!(!stats.complete);
    }

    #[test]
    fn greedy_valid_on_mmm() {
        for n in [2, 3, 4] {
            for m in [8, 16, 64] {
                let g = mmm_cdag(n);
                let moves = greedy_schedule(&g, m);
                let stats = execute(&g, &moves, m).unwrap();
                assert!(stats.complete, "n={n} m={m}");
                assert_eq!(stats.computes as usize, n * n * n, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn greedy_valid_on_lu() {
        for n in [2, 3, 5] {
            let (g, _) = lu_cdag(n);
            let m = 16;
            let moves = greedy_schedule(&g, m);
            let stats = execute(&g, &moves, m).unwrap();
            assert!(stats.complete, "n={n}");
        }
    }

    #[test]
    fn more_memory_never_hurts_much() {
        // Belady with larger M should not do more I/O on these graphs.
        let g = mmm_cdag(4);
        let q_small = execute(&g, &greedy_schedule(&g, 8), 8).unwrap().q();
        let q_big = execute(&g, &greedy_schedule(&g, 128), 128).unwrap().q();
        assert!(q_big <= q_small, "q_big={q_big} q_small={q_small}");
    }

    #[test]
    fn unlimited_memory_reaches_compulsory_traffic() {
        // With M >= |V|, Q = inputs (loads) + outputs (stores).
        let g = mmm_cdag(3);
        let m = g.len();
        let stats = execute(&g, &greedy_schedule(&g, m), m).unwrap();
        assert_eq!(stats.loads as usize, g.inputs().len());
        assert_eq!(stats.stores as usize, g.outputs().len());
    }

    #[test]
    #[should_panic(expected = "max in-degree")]
    fn too_few_pebbles_panics() {
        let g = mmm_cdag(2);
        let _ = greedy_schedule(&g, 2);
    }
}
