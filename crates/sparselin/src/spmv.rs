//! Sparse matrix–vector product, serial and pool-parallel.
//!
//! The parallel path partitions rows into contiguous bands, one per worker
//! of [`denselin::pool`], and each band computes its rows with the *same*
//! per-row loop as the serial kernel. A row's accumulation order therefore
//! never depends on the thread count or on which helper ran the band, so
//! `spmv_parallel` is bitwise identical to [`spmv`] for every `threads`
//! value — the property the verifier's parity oracle and the proptests pin.
//!
//! Band boundaries are chosen by *nonzero count*, not row count, so one
//! dense-ish row cannot serialise the whole product (the generators in
//! [`crate::csr`] produce banded patterns where plain row splitting would
//! be fine, but served matrices are arbitrary).

use denselin::pool;

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// Raw pointer wrapper so pool jobs can write disjoint bands of the output
/// buffer. Same shape as the pool's internal `SyncPtr` (which is
/// `pub(crate)` to denselin); soundness rests on the bands being pairwise
/// disjoint, which `band_bounds` guarantees by construction.
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    fn get(&self) -> *mut f64 {
        self.0
    }
}

/// `y = A·x`, one row at a time, accumulating in stored (ascending column)
/// order. This loop is the single source of truth for what an SpMV result
/// *is*; the parallel kernel calls it per band.
pub fn spmv(a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
    check_dims(a, x, y)?;
    spmv_rows(a, x, y, 0, a.rows());
    Ok(())
}

/// `y = A·x` with rows banded across `threads` pool workers. Bitwise
/// identical to [`spmv`] at every thread count; `threads == 0` means
/// [`denselin::auto_threads`].
pub fn spmv_parallel(
    a: &CsrMatrix,
    x: &[f64],
    y: &mut [f64],
    threads: usize,
) -> Result<(), SparseError> {
    check_dims(a, x, y)?;
    let threads = effective_threads(threads, a.rows());
    if threads <= 1 {
        spmv_rows(a, x, y, 0, a.rows());
        return Ok(());
    }
    let bounds = band_bounds(a, threads);
    let out = SendPtr(y.as_mut_ptr());
    pool::global().run(threads, &|w| {
        let (lo, hi) = (bounds[w], bounds[w + 1]);
        if lo < hi {
            // SAFETY: bands [lo, hi) are pairwise disjoint row ranges, and
            // y outlives the job because `run` blocks until every worker
            // retires.
            let band = unsafe { std::slice::from_raw_parts_mut(out.get().add(lo), hi - lo) };
            spmv_rows_into(a, x, band, lo, hi);
        }
    });
    Ok(())
}

/// Flops of one product: a multiply and an add per stored entry.
pub fn spmv_flops(a: &CsrMatrix) -> u64 {
    2 * a.nnz() as u64
}

/// Bytes a streaming SpMV must move at minimum: read every CSR array once,
/// read `x` once, write `y` once. (The STREAM-style roofline the bench bin
/// compares measured GB/s against.)
pub fn spmv_bytes(a: &CsrMatrix) -> u64 {
    (a.bytes() + (a.cols() + a.rows()) * std::mem::size_of::<f64>()) as u64
}

fn check_dims(a: &CsrMatrix, x: &[f64], y: &[f64]) -> Result<(), SparseError> {
    if x.len() != a.cols() {
        return Err(SparseError::DimensionMismatch {
            expected: a.cols(),
            got: x.len(),
        });
    }
    if y.len() != a.rows() {
        return Err(SparseError::DimensionMismatch {
            expected: a.rows(),
            got: y.len(),
        });
    }
    Ok(())
}

/// Serial row loop writing `y[lo..hi]` through the full-length slice.
fn spmv_rows(a: &CsrMatrix, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
    spmv_rows_into(a, x, &mut y[lo..hi], lo, hi);
}

/// The per-row kernel: `band[i - lo] = Σ_k vals[k]·x[col[k]]` in stored
/// order, for rows `lo..hi`.
fn spmv_rows_into(a: &CsrMatrix, x: &[f64], band: &mut [f64], lo: usize, hi: usize) {
    for i in lo..hi {
        let (idx, vals) = a.row(i);
        let mut acc = 0.0f64;
        for (k, &j) in idx.iter().enumerate() {
            acc += vals[k] * x[j];
        }
        band[i - lo] = acc;
    }
}

fn effective_threads(threads: usize, rows: usize) -> usize {
    let t = if threads == 0 {
        denselin::auto_threads()
    } else {
        threads
    };
    t.max(1).min(rows.max(1))
}

/// Row-band boundaries balancing stored entries: `bounds[w]..bounds[w+1]`
/// is worker `w`'s band. Deterministic in `(a, threads)` alone.
fn band_bounds(a: &CsrMatrix, threads: usize) -> Vec<usize> {
    let nnz = a.nnz();
    let row_ptr = a.row_ptr();
    let mut bounds = Vec::with_capacity(threads + 1);
    bounds.push(0);
    let mut row = 0;
    for w in 1..threads {
        // smallest row index whose prefix covers w/threads of the entries
        let target = nnz * w / threads;
        while row < a.rows() && row_ptr[row] < target {
            row += 1;
        }
        bounds.push(row);
    }
    bounds.push(a.rows());
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{banded, random_density, spd_laplacian};

    fn dense_reference(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let d = a.to_dense();
        (0..a.rows())
            .map(|i| d.row(i).iter().zip(x).map(|(&aij, &xj)| aij * xj).sum())
            .collect()
    }

    #[test]
    fn matches_dense_reference() {
        let a = spd_laplacian(5, 4, 0.25);
        let x: Vec<f64> = (0..a.cols()).map(|j| (j as f64).sin()).collect();
        let mut y = vec![0.0; a.rows()];
        spmv(&a, &x, &mut y).unwrap();
        let r = dense_reference(&a, &x);
        for (yi, ri) in y.iter().zip(&r) {
            assert!((yi - ri).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_is_bitwise_serial() {
        for (name, a) in [
            ("banded", banded(137, 5, 11)),
            ("random", random_density(97, 0.15, 3)),
            ("laplacian", spd_laplacian(16, 11, 0.0)),
        ] {
            let x: Vec<f64> = (0..a.cols()).map(|j| ((j * 37 + 5) as f64).cos()).collect();
            let mut serial = vec![0.0; a.rows()];
            spmv(&a, &x, &mut serial).unwrap();
            for threads in [1, 2, 3, 4, 7, 16, 200] {
                let mut par = vec![f64::NAN; a.rows()];
                spmv_parallel(&a, &x, &mut par, threads).unwrap();
                for (i, (s, p)) in serial.iter().zip(&par).enumerate() {
                    assert_eq!(
                        s.to_bits(),
                        p.to_bits(),
                        "{name}: row {i} differs at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn band_bounds_cover_and_balance() {
        let a = random_density(211, 0.07, 8);
        for threads in [1, 2, 3, 8, 50] {
            let b = band_bounds(&a, threads);
            assert_eq!(b.len(), threads + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), a.rows());
            assert!(b.windows(2).all(|w| w[0] <= w[1]), "monotone: {b:?}");
        }
    }

    #[test]
    fn dimension_errors() {
        let a = banded(10, 2, 1);
        let x = vec![0.0; 9];
        let mut y = vec![0.0; 10];
        assert!(matches!(
            spmv(&a, &x, &mut y),
            Err(SparseError::DimensionMismatch {
                expected: 10,
                got: 9
            })
        ));
        let x = vec![0.0; 10];
        let mut y = vec![0.0; 11];
        assert!(spmv_parallel(&a, &x, &mut y, 2).is_err());
    }

    #[test]
    fn accounting_is_exact() {
        let a = spd_laplacian(6, 6, 0.0);
        assert_eq!(spmv_flops(&a), 2 * a.nnz() as u64);
        assert!(spmv_bytes(&a) > a.bytes() as u64);
    }
}
