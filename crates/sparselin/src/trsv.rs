//! Level-scheduled sparse triangular solve.
//!
//! A sparse `L·x = b` looks serial — row `i` needs every `x[j]` with
//! `a_ij ≠ 0` — but the dependency DAG is usually shallow. Level analysis
//! assigns each row `level[i] = 1 + max(level[j])` over its off-diagonal
//! neighbours; all rows of one level are independent and can run in
//! parallel, with a barrier between levels. The schedule depends only on
//! the sparsity *pattern*, so [`SparseTriangle`] computes it once at
//! construction and every subsequent solve (SymGS sweeps, CG
//! preconditioner applications) reuses it — that cached analysis is
//! exactly what the serving layer's factor cache amortizes across repeat
//! solves.
//!
//! Determinism: a row's update loop reads only `x` entries finalized in
//! earlier levels and accumulates in stored column order, so results are
//! bitwise identical at every thread count, same contract as
//! [`crate::spmv()`].

use denselin::pool;

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// Which triangle a [`SparseTriangle`] represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriangleKind {
    /// Lower triangular (diagonal included): forward substitution.
    Lower,
    /// Upper triangular (diagonal included): backward substitution.
    Upper,
}

/// The once-per-pattern level analysis: rows grouped by dependency depth.
#[derive(Clone, Debug)]
pub struct LevelSchedule {
    /// `rows[level_ptr[l]..level_ptr[l+1]]` are the rows of level `l`,
    /// in ascending row order (a deterministic tie-break).
    level_ptr: Vec<usize>,
    rows: Vec<usize>,
}

impl LevelSchedule {
    /// Number of levels (the critical-path length of the solve).
    pub fn depth(&self) -> usize {
        self.level_ptr.len().saturating_sub(1)
    }

    /// Rows of level `l`.
    pub fn level(&self, l: usize) -> &[usize] {
        &self.rows[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// Widest level — the available parallelism.
    pub fn max_width(&self) -> usize {
        (0..self.depth())
            .map(|l| self.level(l).len())
            .max()
            .unwrap_or(0)
    }

    /// Resident bytes of the schedule arrays.
    pub fn bytes(&self) -> usize {
        (self.level_ptr.len() + self.rows.len()) * std::mem::size_of::<usize>()
    }
}

/// A validated triangular CSR factor with its cached level schedule and
/// extracted diagonal.
#[derive(Clone, Debug)]
pub struct SparseTriangle {
    m: CsrMatrix,
    kind: TriangleKind,
    levels: LevelSchedule,
    diag: Vec<f64>,
}

struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Going through a method (not field access) makes closures capture
    /// the `Sync` wrapper rather than the raw pointer — same trick as the
    /// pool's internal `SyncPtr`.
    fn get(&self) -> *mut f64 {
        self.0
    }
}

impl SparseTriangle {
    /// Wrap a lower-triangular matrix (diagonal included). Validates shape,
    /// triangularity, and a nonzero diagonal, then runs the level analysis.
    pub fn lower(m: CsrMatrix) -> Result<Self, SparseError> {
        Self::build(m, TriangleKind::Lower)
    }

    /// Wrap an upper-triangular matrix (diagonal included).
    pub fn upper(m: CsrMatrix) -> Result<Self, SparseError> {
        Self::build(m, TriangleKind::Upper)
    }

    fn build(m: CsrMatrix, kind: TriangleKind) -> Result<Self, SparseError> {
        let (r, c) = m.shape();
        if r != c {
            return Err(SparseError::DimensionMismatch {
                expected: r,
                got: c,
            });
        }
        for i in 0..r {
            let (idx, _) = m.row(i);
            for &j in idx {
                let wrong = match kind {
                    TriangleKind::Lower => j > i,
                    TriangleKind::Upper => j < i,
                };
                if wrong {
                    return Err(SparseError::NotTriangular { row: i, col: j });
                }
            }
        }
        let diag = m.diagonal()?;
        let levels = schedule(&m, kind);
        Ok(SparseTriangle {
            m,
            kind,
            levels,
            diag,
        })
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.m
    }

    /// Lower or upper.
    pub fn kind(&self) -> TriangleKind {
        self.kind
    }

    /// The cached level schedule.
    pub fn levels(&self) -> &LevelSchedule {
        &self.levels
    }

    /// The extracted diagonal (validated nonzero at construction).
    pub fn diagonal(&self) -> &[f64] {
        &self.diag
    }

    /// Resident bytes: matrix + schedule + diagonal (cache accounting).
    pub fn bytes(&self) -> usize {
        self.m.bytes() + self.levels.bytes() + self.diag.len() * std::mem::size_of::<f64>()
    }

    /// Solve `T·x = b` by level-scheduled substitution. `threads == 0`
    /// means [`denselin::auto_threads`]; results are bitwise identical at
    /// every thread count.
    pub fn solve(&self, b: &[f64], x: &mut [f64], threads: usize) -> Result<(), SparseError> {
        let n = self.m.rows();
        if b.len() != n {
            return Err(SparseError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        if x.len() != n {
            return Err(SparseError::DimensionMismatch {
                expected: n,
                got: x.len(),
            });
        }
        let threads = if threads == 0 {
            denselin::auto_threads()
        } else {
            threads
        }
        .max(1);
        let out = SendPtr(x.as_mut_ptr());
        for l in 0..self.levels.depth() {
            let rows = self.levels.level(l);
            let workers = threads.min(rows.len()).max(1);
            // Barrier per level: pool::run returns only after every worker
            // retires, so level l+1 reads finalized x entries.
            pool::global().run(workers, &|w| {
                let lo = rows.len() * w / workers;
                let hi = rows.len() * (w + 1) / workers;
                for &i in &rows[lo..hi] {
                    // SAFETY: each row index appears in exactly one level
                    // chunk, so writes are disjoint; reads target entries
                    // finalized before this pool::run began.
                    let xs = unsafe { std::slice::from_raw_parts_mut(out.get(), n) };
                    let (idx, vals) = self.m.row(i);
                    let mut acc = b[i];
                    let mut dinv = 0.0;
                    for (k, &j) in idx.iter().enumerate() {
                        if j == i {
                            dinv = vals[k];
                        } else {
                            acc -= vals[k] * xs[j];
                        }
                    }
                    xs[i] = acc / dinv;
                }
            });
        }
        Ok(())
    }
}

/// Dependency-depth analysis. Pattern-only; values never matter.
fn schedule(m: &CsrMatrix, kind: TriangleKind) -> LevelSchedule {
    let n = m.rows();
    let mut level = vec![0usize; n];
    let mut depth = 0usize;
    let order: Box<dyn Iterator<Item = usize>> = match kind {
        TriangleKind::Lower => Box::new(0..n),
        TriangleKind::Upper => Box::new((0..n).rev()),
    };
    for i in order {
        let (idx, _) = m.row(i);
        let mut lv = 0usize;
        for &j in idx {
            if j != i {
                lv = lv.max(level[j] + 1);
            }
        }
        level[i] = lv;
        depth = depth.max(lv + 1);
    }
    let mut level_ptr = vec![0usize; depth + 1];
    for &lv in &level {
        level_ptr[lv + 1] += 1;
    }
    for l in 0..depth {
        level_ptr[l + 1] += level_ptr[l];
    }
    let mut rows = vec![0usize; n];
    let mut next = level_ptr.clone();
    // ascending row index within each level: deterministic and
    // cache-friendlier than discovery order for the Upper case
    for (i, &lv) in level.iter().enumerate() {
        rows[next[lv]] = i;
        next[lv] += 1;
    }
    LevelSchedule { level_ptr, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{banded, spd_laplacian, CsrMatrix};

    #[test]
    fn rejects_non_triangular_and_zero_diag() {
        let a = spd_laplacian(3, 3, 0.0);
        assert!(matches!(
            SparseTriangle::lower(a.clone()),
            Err(SparseError::NotTriangular { .. })
        ));
        // missing diagonal
        let m = CsrMatrix::from_triplets(2, 2, &[(1, 0, 1.0), (1, 1, 2.0)]).unwrap();
        assert!(matches!(
            SparseTriangle::lower(m),
            Err(SparseError::ZeroDiagonal { row: 0 })
        ));
    }

    #[test]
    fn laplacian_lower_levels_are_grid_diagonals() {
        // 5-point Laplacian lower triangle on an nx×ny grid: row (x, y)
        // depends on (x-1, y) and (x, y-1), so level = x + y.
        let nx = 4;
        let ny = 3;
        let t = SparseTriangle::lower(spd_laplacian(nx, ny, 0.0).lower_triangle()).unwrap();
        assert_eq!(t.levels().depth(), nx + ny - 1);
        for l in 0..t.levels().depth() {
            for &i in t.levels().level(l) {
                assert_eq!((i % nx) + (i / nx), l, "row {i}");
            }
        }
        // diagonal-free rows all land in level 0
        assert_eq!(t.levels().level(0), &[0]);
    }

    #[test]
    fn solves_match_dense_substitution() {
        let a = banded(40, 3, 21);
        let b: Vec<f64> = (0..40).map(|i| ((i * 13 + 1) as f64).sin()).collect();
        for (tri, kind) in [
            (SparseTriangle::lower(a.lower_triangle()).unwrap(), "lower"),
            (SparseTriangle::upper(a.upper_triangle()).unwrap(), "upper"),
        ] {
            let mut x = vec![0.0; 40];
            tri.solve(&b, &mut x, 1).unwrap();
            // check T·x = b through SpMV
            let mut back = vec![0.0; 40];
            crate::spmv::spmv(tri.matrix(), &x, &mut back).unwrap();
            for (i, (bi, ri)) in b.iter().zip(&back).enumerate() {
                assert!((bi - ri).abs() < 1e-9, "{kind} row {i}: {bi} vs {ri}");
            }
        }
    }

    #[test]
    fn parallel_solve_is_bitwise_serial() {
        for a in [banded(130, 4, 5), spd_laplacian(12, 11, 0.5)] {
            let b: Vec<f64> = (0..a.rows()).map(|i| ((i + 7) as f64).cos()).collect();
            for tri in [
                SparseTriangle::lower(a.lower_triangle()).unwrap(),
                SparseTriangle::upper(a.upper_triangle()).unwrap(),
            ] {
                let mut serial = vec![0.0; a.rows()];
                tri.solve(&b, &mut serial, 1).unwrap();
                for threads in [2, 3, 5, 8, 64] {
                    let mut par = vec![f64::NAN; a.rows()];
                    tri.solve(&b, &mut par, threads).unwrap();
                    for (s, p) in serial.iter().zip(&par) {
                        assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn schedule_covers_every_row_once() {
        let a = crate::csr::random_density(60, 0.1, 17);
        let t = SparseTriangle::upper(a.upper_triangle()).unwrap();
        let mut seen = [false; 60];
        for l in 0..t.levels().depth() {
            for &i in t.levels().level(l) {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(t.levels().max_width() >= 1);
        assert!(t.bytes() > t.matrix().bytes());
    }
}
