//! Symmetric Gauss–Seidel: the sweep smoother and the SPD preconditioner
//! built from it.
//!
//! Splitting `A = L + D + U` (strict lower / diagonal / strict upper), one
//! symmetric sweep is a forward Gauss–Seidel pass followed by a backward
//! pass. Algebraically the pair is a stationary iteration with matrix
//! `M = (D + L)·D⁻¹·(D + U)`, which is symmetric positive definite whenever
//! `A` is — so `M⁻¹` is a legal CG preconditioner (HPCG's choice).
//!
//! Both the sweeps and the preconditioner application are expressed as
//! solves against two cached [`SparseTriangle`]s, so the level analysis is
//! paid once at [`SymGs::new`] and every application inherits the bitwise
//! thread-count independence of [`crate::trsv`]. That construction cost is
//! the "preconditioner setup" the serving layer caches and amortizes.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::spmv::spmv_parallel;
use crate::trsv::SparseTriangle;

/// Cached symmetric Gauss–Seidel setup: the two triangular factors of
/// `A = L + D + U` with their level schedules, plus the diagonal.
#[derive(Clone, Debug)]
pub struct SymGs {
    lower: SparseTriangle,
    upper: SparseTriangle,
    diag: Vec<f64>,
    scratch_len: usize,
}

impl SymGs {
    /// Extract `D + L` and `D + U` from `A` and run the level analysis on
    /// both. Errors if `A` is non-square or has a missing/zero diagonal.
    pub fn new(a: &CsrMatrix) -> Result<Self, SparseError> {
        let (r, c) = a.shape();
        if r != c {
            return Err(SparseError::DimensionMismatch {
                expected: r,
                got: c,
            });
        }
        let diag = a.diagonal()?;
        let lower = SparseTriangle::lower(a.lower_triangle())?;
        let upper = SparseTriangle::upper(a.upper_triangle())?;
        Ok(SymGs {
            lower,
            upper,
            diag,
            scratch_len: r,
        })
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.scratch_len
    }

    /// Resident bytes of the cached setup (both triangles, schedules, and
    /// the diagonal) — what the serving cache charges its byte budget.
    pub fn bytes(&self) -> usize {
        self.lower.bytes() + self.upper.bytes() + self.diag.len() * std::mem::size_of::<f64>()
    }

    /// Apply the preconditioner: `z = M⁻¹·r` with
    /// `M = (D + L)·D⁻¹·(D + U)`, via forward solve, diagonal scale,
    /// backward solve. Bitwise deterministic at every `threads`.
    pub fn apply(&self, r: &[f64], z: &mut [f64], threads: usize) -> Result<(), SparseError> {
        let n = self.scratch_len;
        if r.len() != n || z.len() != n {
            return Err(SparseError::DimensionMismatch {
                expected: n,
                got: if r.len() != n { r.len() } else { z.len() },
            });
        }
        let mut u = vec![0.0f64; n];
        self.lower.solve(r, &mut u, threads)?;
        for (ui, d) in u.iter_mut().zip(&self.diag) {
            *ui *= d;
        }
        self.upper.solve(&u, z, threads)?;
        Ok(())
    }

    /// One forward Gauss–Seidel sweep on the iterate:
    /// `x ← x + (D + L)⁻¹·(b − A·x)`.
    pub fn forward_sweep(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        threads: usize,
    ) -> Result<(), SparseError> {
        self.half_sweep(a, b, x, threads, true)
    }

    /// One backward Gauss–Seidel sweep:
    /// `x ← x + (D + U)⁻¹·(b − A·x)`.
    pub fn backward_sweep(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        threads: usize,
    ) -> Result<(), SparseError> {
        self.half_sweep(a, b, x, threads, false)
    }

    /// One full symmetric sweep (forward then backward) — the smoother HPCG
    /// runs pre/post restriction.
    pub fn sweep(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        threads: usize,
    ) -> Result<(), SparseError> {
        self.forward_sweep(a, b, x, threads)?;
        self.backward_sweep(a, b, x, threads)
    }

    fn half_sweep(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        threads: usize,
        forward: bool,
    ) -> Result<(), SparseError> {
        let n = self.scratch_len;
        if b.len() != n || x.len() != n || a.rows() != n {
            return Err(SparseError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        // residual r = b − A·x
        let mut r = vec![0.0f64; n];
        spmv_parallel(a, x, &mut r, threads)?;
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        // correction: the triangle solve against the cached schedule
        let mut dx = vec![0.0f64; n];
        let tri = if forward { &self.lower } else { &self.upper };
        tri.solve(&r, &mut dx, threads)?;
        for i in 0..n {
            x[i] += dx[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{banded, spd_laplacian};

    /// M⁻¹ applied to r, checked against densely forming M and solving.
    #[test]
    fn apply_matches_dense_m() {
        let a = banded(24, 2, 31);
        let gs = SymGs::new(&a).unwrap();
        let n = a.rows();
        // dense M = (D+L)·D⁻¹·(D+U)
        let dl = a.lower_triangle().to_dense();
        let du = a.upper_triangle().to_dense();
        let mut dinv = denselin::Matrix::zeros(n, n);
        for i in 0..n {
            dinv[(i, i)] = 1.0 / a.get(i, i);
        }
        let m = dl.matmul(&dinv).matmul(&du);
        let r: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) as f64).sin()).collect();
        let mut z = vec![0.0; n];
        gs.apply(&r, &mut z, 1).unwrap();
        // check M·z ≈ r
        for i in 0..n {
            let mz: f64 = (0..n).map(|j| m[(i, j)] * z[j]).sum();
            assert!((mz - r[i]).abs() < 1e-9, "row {i}: {mz} vs {}", r[i]);
        }
    }

    #[test]
    fn apply_is_bitwise_across_threads() {
        let a = spd_laplacian(13, 9, 0.5);
        let gs = SymGs::new(&a).unwrap();
        let r: Vec<f64> = (0..a.rows()).map(|i| ((i + 2) as f64).cos()).collect();
        let mut serial = vec![0.0; a.rows()];
        gs.apply(&r, &mut serial, 1).unwrap();
        for threads in [2, 3, 4, 8] {
            let mut par = vec![f64::NAN; a.rows()];
            gs.apply(&r, &mut par, threads).unwrap();
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn sweeps_reduce_the_residual() {
        let a = spd_laplacian(8, 8, 0.1);
        let gs = SymGs::new(&a).unwrap();
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) as f64).sin()).collect();
        let mut x = vec![0.0; n];
        let res = |x: &[f64]| -> f64 {
            let mut ax = vec![0.0; n];
            crate::spmv::spmv(&a, x, &mut ax).unwrap();
            b.iter()
                .zip(&ax)
                .map(|(bi, axi)| (bi - axi) * (bi - axi))
                .sum::<f64>()
                .sqrt()
        };
        let r0 = res(&x);
        let mut prev = r0;
        for _ in 0..8 {
            gs.sweep(&a, &b, &mut x, 1).unwrap();
            let r = res(&x);
            assert!(r < prev, "sweep failed to contract: {r} vs {prev}");
            prev = r;
        }
        assert!(
            prev < 0.05 * r0,
            "8 sweeps should contract hard: {prev} vs {r0}"
        );
    }

    #[test]
    fn dimension_errors() {
        let a = banded(6, 1, 2);
        let gs = SymGs::new(&a).unwrap();
        let r = vec![0.0; 5];
        let mut z = vec![0.0; 6];
        assert!(gs.apply(&r, &mut z, 1).is_err());
        assert!(gs.bytes() > a.bytes());
        assert_eq!(gs.n(), 6);
    }
}
