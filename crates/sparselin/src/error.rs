//! The sparse family's typed error vocabulary, mirroring the dense side's
//! [`denselin::lu::SingularMatrix`] / `solversrv::SolveError` split: every
//! failure a caller can act on is a variant, never a panic or a silently
//! wrong answer.

use std::fmt;

/// Everything that can go wrong building or driving a sparse kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum SparseError {
    /// A triplet or index referenced a position outside the matrix.
    OutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// An operand's length does not match the matrix dimension.
    DimensionMismatch {
        /// What the kernel needed.
        expected: usize,
        /// What it was handed.
        got: usize,
    },
    /// A kernel that divides by the diagonal (SpTRSV, SymGS, Jacobi) found
    /// a structurally missing or exactly zero diagonal entry.
    ZeroDiagonal {
        /// First row with no usable diagonal.
        row: usize,
    },
    /// A triangular kernel was handed a matrix with entries on the wrong
    /// side of the diagonal.
    NotTriangular {
        /// First offending row.
        row: usize,
        /// The out-of-triangle column found there.
        col: usize,
    },
    /// CG observed `pᵀ·A·p ≤ 0`: the operator (or preconditioner) is not
    /// positive definite, so the Krylov recurrence has broken down.
    NotPositiveDefinite {
        /// Iteration at which the curvature went non-positive.
        iteration: usize,
    },
    /// CG ran out of its iteration budget above the requested tolerance.
    /// Carries the best iterate's achieved residual so callers can decide
    /// whether a relaxed tolerance is acceptable (the serving layer's
    /// degradation path does exactly that).
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Best relative residual reached.
        residual: f64,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::OutOfBounds { row, col, shape } => write!(
                f,
                "entry ({row}, {col}) outside the {}x{} matrix",
                shape.0, shape.1
            ),
            SparseError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "operand length {got} does not match dimension {expected}"
                )
            }
            SparseError::ZeroDiagonal { row } => {
                write!(f, "missing or zero diagonal at row {row}")
            }
            SparseError::NotTriangular { row, col } => {
                write!(f, "entry ({row}, {col}) violates the triangular structure")
            }
            SparseError::NotPositiveDefinite { iteration } => {
                write!(f, "non-positive curvature at CG iteration {iteration}")
            }
            SparseError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "CG stopped at residual {residual:.3e} after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let cases: Vec<(SparseError, &str)> = vec![
            (
                SparseError::OutOfBounds {
                    row: 3,
                    col: 9,
                    shape: (4, 4),
                },
                "(3, 9)",
            ),
            (
                SparseError::DimensionMismatch {
                    expected: 8,
                    got: 7,
                },
                "length 7",
            ),
            (SparseError::ZeroDiagonal { row: 2 }, "row 2"),
            (SparseError::NotTriangular { row: 1, col: 5 }, "(1, 5)"),
            (
                SparseError::NotPositiveDefinite { iteration: 4 },
                "iteration 4",
            ),
            (
                SparseError::NotConverged {
                    iterations: 100,
                    residual: 1e-3,
                },
                "100 iterations",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
