//! Compressed-sparse-row storage and deterministic seeded generators.
//!
//! [`CsrMatrix`] is the one storage format every kernel in this crate
//! consumes: `row_ptr`/`col_idx`/`vals` with the column indices of each row
//! sorted ascending and deduplicated. Sorted rows are load-bearing, not
//! cosmetic — serial and parallel SpMV accumulate each row in the identical
//! index order, which is what makes the parallel path bitwise reproducible
//! at any thread count (see [`crate::spmv()`]).
//!
//! The generators mirror the verifier's dense `MatrixClass` philosophy:
//! every pattern derives from one `u64` through an in-crate SplitMix64
//! stream, so a corpus seed reproduces the identical matrix bits on every
//! toolchain (no `rand` dependency).

use denselin::Matrix;

use crate::error::SparseError;

/// A sparse `rows × cols` matrix in CSR form with sorted, deduplicated
/// column indices per row.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw CSR arrays. Validates monotone `row_ptr`, in-bounds
    /// and strictly ascending column indices per row.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 || col_idx.len() != vals.len() {
            return Err(SparseError::DimensionMismatch {
                expected: rows + 1,
                got: row_ptr.len(),
            });
        }
        if row_ptr[0] != 0 || *row_ptr.last().unwrap() != col_idx.len() {
            return Err(SparseError::DimensionMismatch {
                expected: col_idx.len(),
                got: *row_ptr.last().unwrap(),
            });
        }
        for i in 0..rows {
            if row_ptr[i] > row_ptr[i + 1] {
                return Err(SparseError::DimensionMismatch {
                    expected: row_ptr[i],
                    got: row_ptr[i + 1],
                });
            }
            let idx = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for (k, &j) in idx.iter().enumerate() {
                if j >= cols {
                    return Err(SparseError::OutOfBounds {
                        row: i,
                        col: j,
                        shape: (rows, cols),
                    });
                }
                if k > 0 && idx[k - 1] >= j {
                    return Err(SparseError::OutOfBounds {
                        row: i,
                        col: j,
                        shape: (rows, cols),
                    });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Build from `(row, col, value)` triplets in any order. Duplicate
    /// coordinates are summed (the standard assembly convention); entries
    /// whose sum is exactly `0.0` are kept, so the sparsity *pattern* is
    /// the union of the inputs and stays deterministic under reordering.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, SparseError> {
        for &(i, j, _) in triplets {
            if i >= rows || j >= cols {
                return Err(SparseError::OutOfBounds {
                    row: i,
                    col: j,
                    shape: (rows, cols),
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(i, j, _)| (i, j));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut vals: Vec<f64> = Vec::with_capacity(sorted.len());
        for &(i, j, v) in &sorted {
            if !col_idx.is_empty()
                && row_ptr[i + 1] == col_idx.len()
                && row_ptr[i] < col_idx.len()
                && *col_idx.last().unwrap() == j
                && row_ptr[i + 1] > row_ptr[i]
            {
                // duplicate coordinate: accumulate
                *vals.last_mut().unwrap() += v;
            } else {
                col_idx.push(j);
                vals.push(v);
            }
            row_ptr[i + 1] = col_idx.len();
        }
        // fill gaps: rows with no entries inherit the previous prefix sum
        for i in 1..=rows {
            if row_ptr[i] < row_ptr[i - 1] {
                row_ptr[i] = row_ptr[i - 1];
            }
        }
        CsrMatrix::from_raw(rows, cols, row_ptr, col_idx, vals)
    }

    /// Build from a dense matrix, keeping every entry that is not exactly
    /// `0.0`.
    pub fn from_dense(a: &Matrix) -> Self {
        let (rows, cols) = a.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Densify (for differential checks against the dense kernels; the
    /// verifier's CG-vs-LU oracle runs on small systems where this is
    /// cheap).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[(i, self.col_idx[k])] = self.vals[k];
            }
        }
        out
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Stored-entry density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The `rows + 1` row-extent prefix sums.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, sorted ascending within each row.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values, parallel to [`CsrMatrix::col_idx`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Row `i` as `(column indices, values)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.vals[span])
    }

    /// Resident bytes of the CSR arrays (the footprint the serving cache
    /// accounts against its byte budget).
    pub fn bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.vals.len() * std::mem::size_of::<f64>()
    }

    /// The value at `(i, j)`, `0.0` when not stored. Binary search over the
    /// sorted row.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (idx, vals) = self.row(i);
        match idx.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// The main diagonal. Errors on the first structurally missing or
    /// exactly zero diagonal entry (square matrices only make sense here).
    pub fn diagonal(&self) -> Result<Vec<f64>, SparseError> {
        let n = self.rows.min(self.cols);
        let mut d = Vec::with_capacity(n);
        for i in 0..n {
            let v = self.get(i, i);
            if v == 0.0 {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
            d.push(v);
        }
        Ok(d)
    }

    /// Is the stored pattern + values exactly symmetric? (Bitwise check —
    /// the generators build symmetric matrices symmetrically, so SPD inputs
    /// pass exactly.)
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        (0..self.rows).all(|i| {
            let (idx, vals) = self.row(i);
            idx.iter()
                .zip(vals)
                .all(|(&j, &v)| self.get(j, i).to_bits() == v.to_bits())
        })
    }

    /// The lower triangle *including* the diagonal, as its own CSR matrix
    /// (the `D + L` operand of SymGS and the SpTRSV factor).
    pub fn lower_triangle(&self) -> CsrMatrix {
        self.triangle(true)
    }

    /// The upper triangle *including* the diagonal.
    pub fn upper_triangle(&self) -> CsrMatrix {
        self.triangle(false)
    }

    fn triangle(&self, lower: bool) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for i in 0..self.rows {
            let (idx, v) = self.row(i);
            for (k, &j) in idx.iter().enumerate() {
                if (lower && j <= i) || (!lower && j >= i) {
                    col_idx.push(j);
                    vals.push(v[k]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Transposed copy (CSC-to-CSR flip; `O(nnz + rows + cols)`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.col_idx {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let dst = next[j];
                next[j] += 1;
                col_idx[dst] = i;
                vals[dst] = self.vals[k];
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            vals,
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded generators
// ---------------------------------------------------------------------------

/// SplitMix64, duplicated from the verifier's in-crate stream on purpose:
/// `sparselin` sits below `solversrv` in the dependency graph while the
/// verifier sits above it, and both need the *identical* bits for a given
/// seed without a shared dependency.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[-1, 1)`.
    pub fn symmetric(&mut self) -> f64 {
        2.0 * self.unit() - 1.0
    }
}

/// Seeded symmetric banded matrix: half-bandwidth `hb` (so `2·hb + 1`
/// diagonals), random off-diagonal values in `[-1, 1)`, and a diagonal
/// made strictly dominant — SPD by Gershgorin, so CG applies directly.
pub fn banded(n: usize, hb: usize, seed: u64) -> CsrMatrix {
    let mut r = SplitMix64::new(seed);
    // generate the strict upper band once, mirror it for exact symmetry
    let mut upper = vec![Vec::<(usize, f64)>::new(); n];
    for (i, row) in upper.iter_mut().enumerate() {
        for j in (i + 1)..n.min(i + hb + 1) {
            row.push((j, r.symmetric()));
        }
    }
    assemble_symmetric(n, &upper, 1.0)
}

/// Seeded symmetric random-pattern matrix: each strict-upper entry present
/// with probability `density`, mirrored for symmetry, diagonal dominant.
/// `density` is clamped to `(0, 1]`.
pub fn random_density(n: usize, density: f64, seed: u64) -> CsrMatrix {
    let density = density.clamp(1e-6, 1.0);
    let mut r = SplitMix64::new(seed);
    let mut upper = vec![Vec::<(usize, f64)>::new(); n];
    for (i, row) in upper.iter_mut().enumerate() {
        for j in (i + 1)..n {
            // one draw per candidate keeps the stream aligned regardless of
            // acceptance, so patterns at different densities share structure
            let coin = r.unit();
            let val = r.symmetric();
            if coin < density {
                row.push((j, val));
            }
        }
    }
    assemble_symmetric(n, &upper, 1.0)
}

/// The 5-point finite-difference Laplacian on an `nx × ny` grid plus
/// `shift·I`: the canonical SPD model problem (HPCG's operator). With
/// `shift > 0` the spectrum lives in `[shift, shift + 8]`, which gives the
/// CG iteration-bound tests an analytic condition-number handle.
pub fn spd_laplacian(nx: usize, ny: usize, shift: f64) -> CsrMatrix {
    let n = nx * ny;
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            // neighbors in ascending column order: (y-1), (x-1), self, (x+1), (y+1)
            if y > 0 {
                col_idx.push(i - nx);
                vals.push(-1.0);
            }
            if x > 0 {
                col_idx.push(i - 1);
                vals.push(-1.0);
            }
            col_idx.push(i);
            vals.push(4.0 + shift);
            if x + 1 < nx {
                col_idx.push(i + 1);
                vals.push(-1.0);
            }
            if y + 1 < ny {
                col_idx.push(i + nx);
                vals.push(-1.0);
            }
            row_ptr.push(col_idx.len());
        }
    }
    CsrMatrix {
        rows: n,
        cols: n,
        row_ptr,
        col_idx,
        vals,
    }
}

/// Mirror a strict-upper triangle into a full symmetric CSR matrix with a
/// Gershgorin-dominant diagonal (`row abs-sum + margin`).
fn assemble_symmetric(n: usize, upper: &[Vec<(usize, f64)>], margin: f64) -> CsrMatrix {
    // strict lower rows are the transpose of the strict upper ones
    let mut lower = vec![Vec::<(usize, f64)>::new(); n];
    for (i, row) in upper.iter().enumerate() {
        for &(j, v) in row {
            lower[j].push((i, v));
        }
    }
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        let off_sum: f64 = lower[i]
            .iter()
            .chain(&upper[i])
            .map(|&(_, v)| v.abs())
            .sum();
        for &(j, v) in &lower[i] {
            col_idx.push(j);
            vals.push(v);
        }
        col_idx.push(i);
        vals.push(off_sum + margin);
        for &(j, v) in &upper[i] {
            col_idx.push(j);
            vals.push(v);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix {
        rows: n,
        cols: n,
        row_ptr,
        col_idx,
        vals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_duplicates_and_sort() {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (2, 1, 5.0),
                (0, 0, 1.0),
                (2, 1, 2.0),
                (0, 2, 3.0),
                (1, 1, 4.0),
            ],
        )
        .unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(2, 1), 7.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 2), 3.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.row(0).0, &[0, 2]);
    }

    #[test]
    fn triplets_reject_out_of_bounds() {
        let err = CsrMatrix::from_triplets(2, 2, &[(0, 3, 1.0)]).unwrap_err();
        assert!(matches!(err, SparseError::OutOfBounds { col: 3, .. }));
    }

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_fn(4, 5, |i, j| {
            if (i + j) % 3 == 0 {
                (i * 5 + j) as f64 + 1.0
            } else {
                0.0
            }
        });
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.to_dense(), d);
        assert!(s.density() > 0.0 && s.density() < 1.0);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // column out of bounds
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]).is_err());
        // unsorted row
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // bad prefix sums
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn generators_are_deterministic_and_symmetric() {
        let a = banded(20, 3, 7);
        let b = banded(20, 3, 7);
        assert_eq!(a, b);
        assert!(a.is_symmetric());
        let c = random_density(25, 0.2, 9);
        assert!(c.is_symmetric());
        assert_eq!(c, random_density(25, 0.2, 9));
        let l = spd_laplacian(4, 5, 0.5);
        assert!(l.is_symmetric());
        assert_eq!(l.rows(), 20);
        assert_eq!(l.get(0, 0), 4.5);
        assert_eq!(l.get(0, 1), -1.0);
        assert_eq!(l.get(1, 0), -1.0);
    }

    #[test]
    fn generators_are_diagonally_dominant() {
        for a in [banded(16, 2, 3), random_density(16, 0.3, 4)] {
            for i in 0..16 {
                let (idx, vals) = a.row(i);
                let off: f64 = idx
                    .iter()
                    .zip(vals)
                    .filter(|(&j, _)| j != i)
                    .map(|(_, v)| v.abs())
                    .sum();
                assert!(a.get(i, i) > off, "row {i} not dominant");
            }
        }
    }

    #[test]
    fn diagonal_extraction() {
        let a = spd_laplacian(3, 3, 1.0);
        let d = a.diagonal().unwrap();
        assert!(d.iter().all(|&x| x == 5.0));
        // a matrix with a structural zero on the diagonal errors
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            b.diagonal(),
            Err(SparseError::ZeroDiagonal { row: 1 })
        ));
    }

    #[test]
    fn triangles_and_transpose() {
        let a = spd_laplacian(3, 2, 0.0);
        let lo = a.lower_triangle();
        let up = a.upper_triangle();
        // L + U double-counts the diagonal: check against dense arithmetic
        let sum = lo.to_dense().add(&up.to_dense());
        let mut expect = a.to_dense();
        for i in 0..a.rows() {
            expect[(i, i)] *= 2.0;
        }
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(sum[(i, j)], expect[(i, j)]);
            }
        }
        // symmetric matrix: transpose is identical
        assert_eq!(a.transpose(), a);
        // and transpose of the lower triangle is the upper one
        assert_eq!(lo.transpose(), up);
    }

    #[test]
    fn bytes_accounts_all_arrays() {
        let a = spd_laplacian(4, 4, 0.0);
        let expect = (a.row_ptr().len() + a.col_idx().len()) * std::mem::size_of::<usize>()
            + std::mem::size_of_val(a.values());
        assert_eq!(a.bytes(), expect);
    }
}
