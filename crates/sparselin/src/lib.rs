//! `sparselin` — the sparse CSR kernel family beside `denselin`'s dense
//! one.
//!
//! The COnfLUX paper's I/O model is about dense factorization, but the
//! serving and verification layers built around it in this repo are
//! kernel-agnostic; this crate adds the second kernel family they host:
//!
//! * [`csr`] — [`CsrMatrix`] storage (sorted-column CSR), triplet/dense
//!   builders, and deterministic seeded generators (banded,
//!   random-density, SPD 5-point Laplacian),
//! * [`mod@spmv`] — serial + worker-pool-parallel `y = A·x`, bitwise
//!   reproducible at any thread count via contiguous nnz-balanced row
//!   bands,
//! * [`trsv`] — level-scheduled sparse triangular solve with the analysis
//!   cached on [`SparseTriangle`],
//! * [`symgs`] — symmetric Gauss–Seidel sweeps and the
//!   `(D+L)·D⁻¹·(D+U)` preconditioner built on two cached triangles,
//! * [`mod@cg`] — preconditioned conjugate gradients with residual
//!   history and flop/byte accounting,
//! * [`error`] — the typed [`SparseError`] vocabulary.
//!
//! The determinism contract matches the dense crate: every parallel path
//! produces bits identical to its serial counterpart, so differential
//! fuzzing can assert equality, not approximation.
//!
//! # Example
//!
//! Solve a model Poisson problem with SymGS-preconditioned CG:
//!
//! ```
//! use sparselin::{cg, spd_laplacian, CgConfig, PrecondSetup, Preconditioner};
//!
//! let a = spd_laplacian(8, 8, 0.1);
//! let b = vec![1.0; a.rows()];
//! let pre = PrecondSetup::prepare(Preconditioner::SymGs, &a).unwrap();
//! let out = cg(&a, &b, &pre, &CgConfig::default()).unwrap();
//! assert!(out.converged);
//! assert!(out.residual() <= 1e-10);
//! ```

#![warn(missing_docs)]

pub mod cg;
pub mod csr;
pub mod error;
pub mod spmv;
pub mod symgs;
pub mod trsv;

pub use cg::{cg, CgConfig, CgOutcome, PrecondSetup, Preconditioner, SparseStats};
pub use csr::{banded, random_density, spd_laplacian, CsrMatrix, SplitMix64};
pub use error::SparseError;
pub use spmv::{spmv, spmv_bytes, spmv_flops, spmv_parallel};
pub use symgs::SymGs;
pub use trsv::{LevelSchedule, SparseTriangle, TriangleKind};
