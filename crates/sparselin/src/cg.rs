//! Preconditioned conjugate gradients with explicit work accounting.
//!
//! Plain CG plus two preconditioners from this crate: Jacobi (diagonal
//! scaling, setup is one pass over the diagonal) and symmetric
//! Gauss–Seidel (setup runs two level analyses; application is two
//! triangle solves per iteration). The split between [`PrecondSetup::prepare`]
//! and [`PrecondSetup::apply`] is deliberate: setup is the expensive,
//! pattern-dependent part, so the serving layer caches the prepared object
//! keyed by matrix fingerprint and repeat solves skip straight to the
//! iteration — the sparse analogue of caching a dense LU factor.
//!
//! Everything downstream of the inputs is bitwise deterministic at any
//! thread count (see [`crate::spmv()`] and [`crate::trsv`]); dot products
//! are accumulated serially in index order for the same reason.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::spmv::{spmv_bytes, spmv_flops, spmv_parallel};
use crate::symgs::SymGs;

/// Which preconditioner to prepare for a matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preconditioner {
    /// No preconditioning: `z = r`.
    None,
    /// Jacobi: `z = D⁻¹·r`.
    Jacobi,
    /// Symmetric Gauss–Seidel: `z = M⁻¹·r`, `M = (D+L)·D⁻¹·(D+U)`.
    SymGs,
}

impl Preconditioner {
    /// Stable lowercase token (scenario DSL, bench JSON, stats).
    pub fn token(self) -> &'static str {
        match self {
            Preconditioner::None => "none",
            Preconditioner::Jacobi => "jacobi",
            Preconditioner::SymGs => "symgs",
        }
    }
}

/// A prepared preconditioner: the cacheable product of the setup phase.
#[derive(Clone, Debug)]
pub enum PrecondSetup {
    /// Identity.
    None,
    /// Reciprocal diagonal.
    Jacobi(Vec<f64>),
    /// Cached triangles + level schedules (boxed: far larger than the
    /// other variants).
    SymGs(Box<SymGs>),
}

impl PrecondSetup {
    /// Run the setup phase for `kind` on `a`.
    pub fn prepare(kind: Preconditioner, a: &CsrMatrix) -> Result<Self, SparseError> {
        match kind {
            Preconditioner::None => Ok(PrecondSetup::None),
            Preconditioner::Jacobi => {
                let d = a.diagonal()?;
                Ok(PrecondSetup::Jacobi(d.iter().map(|&v| 1.0 / v).collect()))
            }
            Preconditioner::SymGs => Ok(PrecondSetup::SymGs(Box::new(SymGs::new(a)?))),
        }
    }

    /// Which preconditioner this is a setup for.
    pub fn kind(&self) -> Preconditioner {
        match self {
            PrecondSetup::None => Preconditioner::None,
            PrecondSetup::Jacobi(_) => Preconditioner::Jacobi,
            PrecondSetup::SymGs(_) => Preconditioner::SymGs,
        }
    }

    /// Resident bytes of the prepared state (cache budget accounting).
    pub fn bytes(&self) -> usize {
        match self {
            PrecondSetup::None => 0,
            PrecondSetup::Jacobi(d) => d.len() * std::mem::size_of::<f64>(),
            PrecondSetup::SymGs(gs) => gs.bytes(),
        }
    }

    /// `z = M⁻¹·r`.
    pub fn apply(&self, r: &[f64], z: &mut [f64], threads: usize) -> Result<(), SparseError> {
        match self {
            PrecondSetup::None => {
                z.copy_from_slice(r);
                Ok(())
            }
            PrecondSetup::Jacobi(dinv) => {
                if r.len() != dinv.len() || z.len() != dinv.len() {
                    return Err(SparseError::DimensionMismatch {
                        expected: dinv.len(),
                        got: r.len(),
                    });
                }
                for i in 0..r.len() {
                    z[i] = r[i] * dinv[i];
                }
                Ok(())
            }
            PrecondSetup::SymGs(gs) => gs.apply(r, z, threads),
        }
    }

    /// Flops of one application (estimate; exact for Jacobi).
    fn apply_flops(&self) -> u64 {
        match self {
            PrecondSetup::None => 0,
            PrecondSetup::Jacobi(d) => d.len() as u64,
            PrecondSetup::SymGs(gs) => {
                // two triangle solves (≈ 2 flops/nnz each) + diagonal scale
                4 * gs.bytes() as u64 / std::mem::size_of::<f64>() as u64 / 3 + gs.n() as u64
            }
        }
    }
}

/// Knobs for a CG run.
#[derive(Clone, Copy, Debug)]
pub struct CgConfig {
    /// Relative residual target `‖b − A·x‖₂ / ‖b‖₂`.
    pub tol: f64,
    /// Iteration budget; `0` means the dimension `n` (exact-arithmetic CG
    /// terminates in at most `n` steps).
    pub max_iters: usize,
    /// Worker threads for SpMV and preconditioner application; `0` means
    /// [`denselin::auto_threads`]. Never changes the computed bits.
    pub threads: usize,
    /// Record every iterate `x_k` (the verifier's A-norm monotonicity
    /// oracle needs them; only sensible for small systems).
    pub record_iterates: bool,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            tol: 1e-10,
            max_iters: 0,
            threads: 1,
            record_iterates: false,
        }
    }
}

/// Work performed by one CG run (estimates where noted; used by the bench
/// roofline and the serving stats).
#[derive(Clone, Copy, Debug, Default)]
pub struct SparseStats {
    /// Floating-point operations.
    pub flops: u64,
    /// Minimum bytes streamed (CSR arrays + vectors per pass).
    pub bytes_moved: u64,
    /// SpMV invocations.
    pub spmv_calls: u64,
    /// Preconditioner applications.
    pub precond_applies: u64,
}

/// The result of a CG run. `converged == false` is *data*, not an error —
/// the caller decides whether the achieved residual is acceptable (the
/// serving layer's relaxed-tolerance degradation does exactly that); use
/// [`CgOutcome::require_converged`] to turn it into [`SparseError::NotConverged`].
#[derive(Clone, Debug)]
pub struct CgOutcome {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Whether `tol` was reached within the budget.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
    /// Relative residual after each iteration (index 0 = after iteration 1).
    pub residual_history: Vec<f64>,
    /// Work accounting.
    pub stats: SparseStats,
    /// Every iterate, when [`CgConfig::record_iterates`] was set.
    pub iterates: Option<Vec<Vec<f64>>>,
}

impl CgOutcome {
    /// Achieved relative residual (1.0 when no iteration ran).
    pub fn residual(&self) -> f64 {
        self.residual_history.last().copied().unwrap_or(1.0)
    }

    /// `Ok(self)` if converged, else [`SparseError::NotConverged`] carrying
    /// the achieved residual.
    pub fn require_converged(self) -> Result<Self, SparseError> {
        if self.converged {
            Ok(self)
        } else {
            Err(SparseError::NotConverged {
                iterations: self.iterations,
                residual: self.residual(),
            })
        }
    }
}

/// Solve the SPD system `A·x = b` by preconditioned conjugate gradients
/// from `x₀ = 0`. Errors only on structural failures (shape, zero
/// diagonal via the preconditioner, loss of positive definiteness);
/// running out of iterations is reported through [`CgOutcome::converged`].
pub fn cg(
    a: &CsrMatrix,
    b: &[f64],
    pre: &PrecondSetup,
    cfg: &CgConfig,
) -> Result<CgOutcome, SparseError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SparseError::DimensionMismatch {
            expected: n,
            got: a.cols(),
        });
    }
    if b.len() != n {
        return Err(SparseError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let max_iters = if cfg.max_iters == 0 { n } else { cfg.max_iters };
    let threads = cfg.threads;

    let mut stats = SparseStats::default();
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok(CgOutcome {
            x: vec![0.0; n],
            converged: true,
            iterations: 0,
            residual_history: Vec::new(),
            stats,
            iterates: cfg.record_iterates.then(Vec::new),
        });
    }

    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0f64; n];
    pre.apply(&r, &mut z, threads)?;
    stats.precond_applies += 1;
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0f64; n];
    let mut history = Vec::new();
    let mut iterates = cfg.record_iterates.then(Vec::<Vec<f64>>::new);

    let per_spmv_flops = spmv_flops(a);
    let per_spmv_bytes = spmv_bytes(a);
    let vec_bytes = (n * std::mem::size_of::<f64>()) as u64;

    let mut converged = false;
    let mut iterations = 0;
    for k in 0..max_iters {
        spmv_parallel(a, &p, &mut ap, threads)?;
        stats.spmv_calls += 1;
        stats.flops += per_spmv_flops;
        stats.bytes_moved += per_spmv_bytes;

        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(SparseError::NotPositiveDefinite { iteration: k });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        // 2 dots + 2 axpys over n entries
        stats.flops += 8 * n as u64;
        stats.bytes_moved += 6 * vec_bytes;
        iterations = k + 1;
        if let Some(hist) = iterates.as_mut() {
            hist.push(x.clone());
        }

        let relres = norm2(&r) / bnorm;
        history.push(relres);
        if relres <= cfg.tol {
            converged = true;
            break;
        }

        pre.apply(&r, &mut z, threads)?;
        stats.precond_applies += 1;
        stats.flops += pre.apply_flops();
        stats.bytes_moved += (pre.bytes() as u64) + 2 * vec_bytes;
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        stats.flops += 4 * n as u64;
        stats.bytes_moved += 3 * vec_bytes;
    }

    Ok(CgOutcome {
        x,
        converged,
        iterations,
        residual_history: history,
        stats,
        iterates,
    })
}

/// Serial index-order dot product — part of the determinism contract.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{banded, random_density, spd_laplacian, CsrMatrix};

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut r = crate::csr::SplitMix64::new(seed);
        (0..n).map(|_| r.symmetric()).collect()
    }

    fn check_solution(a: &CsrMatrix, b: &[f64], x: &[f64], tol: f64) {
        let mut ax = vec![0.0; a.rows()];
        spmv_parallel(a, x, &mut ax, 1).unwrap();
        let res = norm2(
            &b.iter()
                .zip(&ax)
                .map(|(bi, axi)| bi - axi)
                .collect::<Vec<_>>(),
        ) / norm2(b);
        assert!(res <= tol * 10.0, "residual {res} above {tol}");
    }

    #[test]
    fn converges_on_spd_systems_with_every_preconditioner() {
        let a = spd_laplacian(9, 8, 0.2);
        let b = rhs(a.rows(), 4);
        let cfg = CgConfig {
            tol: 1e-10,
            ..Default::default()
        };
        let mut iter_counts = Vec::new();
        for kind in [
            Preconditioner::None,
            Preconditioner::Jacobi,
            Preconditioner::SymGs,
        ] {
            let pre = PrecondSetup::prepare(kind, &a).unwrap();
            let out = cg(&a, &b, &pre, &cfg).unwrap().require_converged().unwrap();
            check_solution(&a, &b, &out.x, cfg.tol);
            assert!(out.stats.spmv_calls as usize == out.iterations);
            assert!(out.stats.flops > 0 && out.stats.bytes_moved > 0);
            iter_counts.push((kind, out.iterations));
        }
        // SymGS must beat plain CG on the model problem
        let plain = iter_counts[0].1;
        let symgs = iter_counts[2].1;
        assert!(
            symgs < plain,
            "SymGS ({symgs} iters) should beat plain CG ({plain})"
        );
    }

    #[test]
    fn deterministic_across_threads() {
        let a = banded(80, 4, 13);
        let b = rhs(80, 9);
        let pre = PrecondSetup::prepare(Preconditioner::SymGs, &a).unwrap();
        let base = cg(&a, &b, &pre, &CgConfig::default()).unwrap();
        for threads in [2, 3, 8] {
            let cfg = CgConfig {
                threads,
                ..Default::default()
            };
            let out = cg(&a, &b, &pre, &cfg).unwrap();
            assert_eq!(out.iterations, base.iterations);
            for (xa, xb) in base.x.iter().zip(&out.x) {
                assert_eq!(xa.to_bits(), xb.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn iteration_budget_reports_not_converged() {
        let a = random_density(60, 0.1, 21);
        let b = rhs(60, 1);
        let pre = PrecondSetup::None;
        let cfg = CgConfig {
            tol: 1e-14,
            max_iters: 2,
            ..Default::default()
        };
        let out = cg(&a, &b, &pre, &cfg).unwrap();
        assert!(!out.converged);
        assert_eq!(out.iterations, 2);
        let err = out.require_converged().unwrap_err();
        assert!(matches!(
            err,
            SparseError::NotConverged { iterations: 2, .. }
        ));
    }

    #[test]
    fn indefinite_matrix_is_detected() {
        // -I is symmetric negative definite: pᵀAp < 0 on the first step
        let a = CsrMatrix::from_triplets(
            4,
            4,
            &[(0, 0, -1.0), (1, 1, -1.0), (2, 2, -1.0), (3, 3, -1.0)],
        )
        .unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let err = cg(&a, &b, &PrecondSetup::None, &CgConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            SparseError::NotPositiveDefinite { iteration: 0 }
        ));
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = banded(10, 1, 1);
        let out = cg(&a, &[0.0; 10], &PrecondSetup::None, &CgConfig::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn recorded_iterates_match_history_length() {
        let a = spd_laplacian(6, 5, 0.4);
        let b = rhs(a.rows(), 3);
        let cfg = CgConfig {
            record_iterates: true,
            ..Default::default()
        };
        let out = cg(&a, &b, &PrecondSetup::None, &cfg).unwrap();
        let iters = out.iterates.as_ref().unwrap();
        assert_eq!(iters.len(), out.residual_history.len());
        // the last recorded iterate IS the returned solution
        for (xa, xb) in out.x.iter().zip(iters.last().unwrap()) {
            assert_eq!(xa.to_bits(), xb.to_bits());
        }
    }
}
