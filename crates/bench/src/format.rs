//! Plain-text table/series rendering for the harness binaries.

use crate::experiments::Measurement;

/// Format a byte count the way the figures label their axes.
pub fn human_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// One Table 2 style row: `measured / modeled GB (prediction %)`.
pub fn table2_cell(m: &Measurement) -> String {
    format!(
        "{:.2} / {:.2} ({:.0}%)",
        m.total_gb(),
        m.model_total_gb(),
        m.prediction_pct()
    )
}

/// Render a series of `(x, y)` points as an aligned two-column block with
/// a crude log-scale spark column, for terminal-readable "figures".
pub fn render_series(title: &str, points: &[(f64, f64)], x_label: &str, y_label: &str) -> String {
    let mut out = format!("## {title}\n{:>10}  {:>14}  {y_label}\n", x_label, y_label);
    let (lo, hi) = points
        .iter()
        .fold((f64::INFINITY, 0.0_f64), |(lo, hi), &(_, y)| {
            (lo.min(y), hi.max(y))
        });
    for &(x, y) in points {
        let frac = if hi > lo {
            ((y.ln() - lo.ln()) / (hi.ln() - lo.ln())).clamp(0.0, 1.0)
        } else {
            0.5
        };
        let bar = "#".repeat(1 + (frac * 40.0) as usize);
        out.push_str(&format!("{x:>10.0}  {:>14}  {bar}\n", human_bytes(y)));
    }
    out
}

/// CSV rendering of labelled series sharing the same x values.
pub fn render_csv(x_label: &str, xs: &[f64], series: &[(&str, Vec<f64>)]) -> String {
    let mut out = String::from(x_label);
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x}"));
        for (_, ys) in series {
            out.push_str(&format!(",{}", ys[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Implementation;

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(2_500.0), "2.50 KB");
        assert_eq!(human_bytes(3.2e7), "32.00 MB");
        assert_eq!(human_bytes(1.21e9), "1.21 GB");
    }

    #[test]
    fn table_cell_shape() {
        let m = Measurement {
            implementation: Implementation::Conflux,
            n: 4096,
            p: 64,
            total_elements: 138_750_000,
            max_per_rank: 0,
            model_per_rank: 2_109_375.0,
        };
        let cell = table2_cell(&m);
        assert!(cell.contains('/'));
        assert!(cell.contains('%'));
    }

    #[test]
    fn csv_layout() {
        let csv = render_csv(
            "p",
            &[1.0, 2.0],
            &[("a", vec![3.0, 4.0]), ("b", vec![5.0, 6.0])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "p,a,b");
        assert_eq!(lines[1], "1,3,5");
        assert_eq!(lines[2], "2,4,6");
    }

    #[test]
    fn series_render_contains_points() {
        let s = render_series("t", &[(4.0, 1e6), (16.0, 5e5)], "P", "bytes");
        assert!(s.contains("## t"));
        assert!(s.contains("1.00 MB"));
        assert!(s.contains("500.00 KB"));
    }
}
