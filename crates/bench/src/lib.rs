//! `conflux-bench` — the experiment harness reproducing every table and
//! figure of the paper's evaluation (Sections 8–9).
//!
//! The library half hosts the shared sweep machinery; the binaries
//! (`table2`, `fig6a`, `fig6b`, `fig7` for volumes, `tracecap` for event
//! timelines and critical paths, `perfsmoke` for kernel GFLOP/s) print the
//! paper's rows/series, and the Criterion benches time reduced-scale
//! versions of the same sweeps.
//!
//! # Example
//!
//! One Fig. 6-style measurement point: COnfLUX volume at `(N, P)` in the
//! paper's memory regime, compared against the Lemma 10 model:
//!
//! ```
//! use conflux_bench::measure_conflux;
//!
//! let m = measure_conflux(256, 16);
//! assert!(m.total_elements > 0);
//! // the model tracks the measurement within a factor of two at small N
//! let pct = m.prediction_pct();
//! assert!(pct > 50.0 && pct < 200.0, "prediction {pct}%");
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod format;

pub use experiments::{measure_all, measure_conflux, pick_block_size, Implementation, Measurement};
