//! `conflux-bench` — the experiment harness reproducing every table and
//! figure of the paper's evaluation (Sections 8–9).
//!
//! The library half hosts the shared sweep machinery; the binaries
//! (`table2`, `fig6a`, `fig6b`, `fig7`) print the paper's rows/series, and
//! the Criterion benches time reduced-scale versions of the same sweeps.

#![warn(missing_docs)]

pub mod experiments;
pub mod format;

pub use experiments::{measure_all, measure_conflux, pick_block_size, Implementation, Measurement};
