//! Reproduces **Figure 6b**: weak scaling — communication volume per node
//! with constant work per node, N = 3200·∛P. The 2.5D algorithms (CANDMC,
//! COnfLUX) should stay flat; the 2D algorithms grow like P^(1/6).
//!
//! Run with `cargo run --release --bin fig6b`.

use conflux_bench::experiments::{measure_all, Implementation};
use conflux_bench::format::{human_bytes, render_csv};

fn main() {
    // perfect cubes so that N = 3200 * cbrt(P) is exact and v | N holds
    let ps = [8usize, 27, 64, 125, 216, 512, 1000];
    println!("# Fig. 6b reproduction: weak scaling, N = 3200 * P^(1/3)");
    println!();
    println!(
        "{:>6} {:>8} | {:>12} {:>12} {:>12} {:>12}",
        "P", "N", "LibSci", "SLATE", "CANDMC", "COnfLUX"
    );
    let mut xs = Vec::new();
    let mut series: Vec<(&str, Vec<f64>)> = vec![
        ("libsci_bytes", vec![]),
        ("slate_bytes", vec![]),
        ("candmc_bytes", vec![]),
        ("conflux_bytes", vec![]),
    ];
    for p in ps {
        let cbrt = (p as f64).cbrt().round() as usize;
        let n = 3200 * cbrt;
        let ms = measure_all(n, p);
        let get = |imp: Implementation| {
            ms.iter()
                .find(|m| m.implementation == imp)
                .unwrap()
                .mean_per_rank_bytes()
        };
        let vals = [
            get(Implementation::LibSci),
            get(Implementation::Slate),
            get(Implementation::Candmc),
            get(Implementation::Conflux),
        ];
        println!(
            "{:>6} {:>8} | {:>12} {:>12} {:>12} {:>12}",
            p,
            n,
            human_bytes(vals[0]),
            human_bytes(vals[1]),
            human_bytes(vals[2]),
            human_bytes(vals[3]),
        );
        xs.push(p as f64);
        for (slot, v) in series.iter_mut().zip(vals) {
            slot.1.push(v);
        }
    }
    println!();
    println!("# CSV\n{}", render_csv("p", &xs, &series));
    println!(
        "# paper's qualitative shape: 2.5D lines (CANDMC, COnfLUX) flat; 2D lines grow ~P^(1/6)."
    );
}
