//! `sparsesmoke` — smoke benchmark of the sparse kernel family
//! (`sparselin`) and its serving path, writing `BENCH_sparse.json` at the
//! repo root.
//!
//! Three stories, matching the crate's design claims:
//!
//! 1. **SpMV is memory-bound**: effective GB/s (from the crate's own byte
//!    accounting) against a measured STREAM-triad roofline, serial and
//!    parallel. The roofline fraction is reported, not gated — a matrix
//!    that fits in cache legitimately beats DRAM bandwidth.
//! 2. **Preconditioning pays in iterations**: CG on the 5-point Laplacian
//!    under None/Jacobi/SymGS. `--check` gates that every variant converges
//!    and that symmetric Gauss–Seidel beats unpreconditioned CG.
//! 3. **The setup cache amortizes**: through `solversrv`, the first solve
//!    pays the preconditioner setup (`factor_time > 0`), every warm solve
//!    skips it entirely (`factor_time == 0`). `--check` gates both, plus
//!    serial↔parallel SpMV bitwise identity.
//!
//! Usage: `cargo run --release -p conflux-bench --bin sparsesmoke --
//! [--quick] [--check] [--out PATH]`

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use denselin::gemm::auto_threads;
use denselin::matrix::Matrix;
use solversrv::{serve, Preconditioner, ServiceConfig, SolveRequest};
use sparselin::{
    banded, cg, random_density, spd_laplacian, spmv, spmv_bytes, spmv_parallel, CgConfig,
    CsrMatrix, PrecondSetup, SplitMix64,
};

struct SpmvEntry {
    pattern: &'static str,
    n: usize,
    nnz: usize,
    threads: usize,
    seconds: f64,
    gbs: f64,
}

struct CgEntry {
    precond: &'static str,
    n: usize,
    iterations: usize,
    converged: bool,
    seconds: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_sparse.json", env!("CARGO_MANIFEST_DIR")));

    let reps = if quick { 3 } else { 5 };
    let threads = auto_threads();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("# sparsesmoke: {threads} thread(s), {cores} core(s)");

    // ---- STREAM-triad roofline: a[i] = b[i] + s·c[i] ----------------------
    let stream_len = if quick { 1 << 22 } else { 1 << 24 };
    let stream_gbs = stream_triad_gbs(stream_len, reps);
    println!("# stream triad: {stream_gbs:.2} GB/s over {stream_len} doubles");

    // ---- SpMV GB/s, serial and parallel, plus the bitwise parity gate ----
    let grid = if quick { 256 } else { 512 };
    let spmv_cases: Vec<(&'static str, CsrMatrix)> = vec![
        ("laplacian", spd_laplacian(grid, grid, 0.0)),
        ("banded", banded(grid * grid / 16, 8, 42)),
        (
            "random",
            random_density(if quick { 2048 } else { 4096 }, 0.01, 43),
        ),
    ];
    let mut spmv_entries: Vec<SpmvEntry> = Vec::new();
    let mut bitwise_ok = true;
    for (pattern, a) in &spmv_cases {
        let n = a.rows();
        let mut r = SplitMix64::new(7);
        let x: Vec<f64> = (0..n).map(|_| r.symmetric()).collect();
        let bytes = spmv_bytes(a) as f64;

        let mut y = vec![0.0f64; n];
        let t = best_of(reps, || spmv(a, &x, &mut y).unwrap());
        push_spmv(&mut spmv_entries, pattern, n, a.nnz(), 1, t, bytes);
        let y_serial = y.clone();

        if threads > 1 {
            let t = best_of(reps, || spmv_parallel(a, &x, &mut y, threads).unwrap());
            push_spmv(&mut spmv_entries, pattern, n, a.nnz(), threads, t, bytes);
            if y.iter()
                .zip(&y_serial)
                .any(|(p, s)| p.to_bits() != s.to_bits())
            {
                eprintln!("# BITWISE VIOLATION: parallel spmv diverges on {pattern}");
                bitwise_ok = false;
            }
        }
    }

    // ---- CG iterations per preconditioner on the shift-free Laplacian ----
    // shift 0 keeps the condition number O(grid²): the variants separate
    let cg_grid = if quick { 48 } else { 64 };
    let a_cg = spd_laplacian(cg_grid, cg_grid, 0.0);
    let n_cg = a_cg.rows();
    let mut r = SplitMix64::new(11);
    let b_cg: Vec<f64> = (0..n_cg).map(|_| r.symmetric()).collect();
    let mut cg_entries: Vec<CgEntry> = Vec::new();
    for (name, precond) in [
        ("none", Preconditioner::None),
        ("jacobi", Preconditioner::Jacobi),
        ("symgs", Preconditioner::SymGs),
    ] {
        let setup = PrecondSetup::prepare(precond, &a_cg).unwrap();
        let cfg = CgConfig {
            tol: 1e-10,
            max_iters: 4 * n_cg,
            threads,
            record_iterates: false,
        };
        let t0 = Instant::now();
        let run = cg(&a_cg, &b_cg, &setup, &cfg).unwrap();
        let seconds = t0.elapsed().as_secs_f64();
        println!(
            "{:>10}  n={n_cg:<6} iters={:<5} converged={} {seconds:>8.4} s",
            format!("cg_{name}"),
            run.iterations,
            run.converged
        );
        cg_entries.push(CgEntry {
            precond: name,
            n: n_cg,
            iterations: run.iterations,
            converged: run.converged,
            seconds,
        });
    }

    // ---- setup-cache amortization through the service ---------------------
    let svc_grid = if quick { 48 } else { 96 };
    let a_svc = spd_laplacian(svc_grid, svc_grid, 0.5);
    let n_svc = a_svc.rows();
    let mut r = SplitMix64::new(13);
    let b_svc = Matrix::from_fn(n_svc, 1, |_, _| r.symmetric());
    let hits = 8usize;
    let ((miss_factor, miss_total, hit_factor_max, hit_total), _report) =
        serve(ServiceConfig::default(), |h| {
            h.register_sparse(1, a_svc.clone(), Preconditioner::SymGs)
                .unwrap();
            let miss = h
                .solve(SolveRequest::new(1, b_svc.clone()).with_tolerance(1e-9))
                .unwrap();
            let mut hit_factor_max = Duration::ZERO;
            let mut hit_total = Duration::ZERO;
            for _ in 0..hits {
                let hit = h
                    .solve(SolveRequest::new(1, b_svc.clone()).with_tolerance(1e-9))
                    .unwrap();
                assert!(hit.stats.cache_hit);
                hit_factor_max = hit_factor_max.max(hit.stats.factor_time);
                hit_total += hit.stats.factor_time + hit.stats.solve_time;
            }
            (
                miss.stats.factor_time,
                miss.stats.factor_time + miss.stats.solve_time,
                hit_factor_max,
                hit_total / hits as u32,
            )
        });
    println!(
        "# service: miss setup {:.1} µs (total {:.1} µs), warm solve {:.1} µs mean over {hits}",
        miss_factor.as_secs_f64() * 1e6,
        miss_total.as_secs_f64() * 1e6,
        hit_total.as_secs_f64() * 1e6
    );

    // ---- render BENCH_sparse.json (hand-rolled: no serde in-tree) ---------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_sparse/v1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"stream_gbs\": {stream_gbs:.3},");
    json.push_str("  \"spmv\": [\n");
    for (i, e) in spmv_entries.iter().enumerate() {
        let comma = if i + 1 < spmv_entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"pattern\": \"{}\", \"n\": {}, \"nnz\": {}, \"threads\": {}, \
             \"seconds\": {:.6}, \"gbs\": {:.3}, \"roofline_fraction\": {:.3} }}{comma}",
            e.pattern,
            e.n,
            e.nnz,
            e.threads,
            e.seconds,
            e.gbs,
            e.gbs / stream_gbs
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"cg\": [\n");
    for (i, e) in cg_entries.iter().enumerate() {
        let comma = if i + 1 < cg_entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"precond\": \"{}\", \"n\": {}, \"iterations\": {}, \
             \"converged\": {}, \"seconds\": {:.6} }}{comma}",
            e.precond, e.n, e.iterations, e.converged, e.seconds
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"service\": {{");
    let _ = writeln!(json, "    \"n\": {n_svc},");
    let _ = writeln!(
        json,
        "    \"setup_seconds_miss\": {:.9},",
        miss_factor.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"total_seconds_miss\": {:.9},",
        miss_total.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"mean_seconds_hit\": {:.9},",
        hit_total.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "    \"setup_amortized\": {}",
        hit_factor_max == Duration::ZERO
    );
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_sparse.json");
    println!("# wrote {out_path}");

    if check {
        let mut failed = false;
        if !bitwise_ok {
            eprintln!("# check FAILED: parallel spmv is not bitwise identical to serial");
            failed = true;
        }
        if let Some(e) = cg_entries.iter().find(|e| !e.converged) {
            eprintln!(
                "# check FAILED: cg with precond={} did not converge in {} iters",
                e.precond, e.iterations
            );
            failed = true;
        }
        let iters = |p: &str| {
            cg_entries
                .iter()
                .find(|e| e.precond == p)
                .unwrap()
                .iterations
        };
        if iters("symgs") >= iters("none") {
            eprintln!(
                "# check FAILED: symgs ({}) should beat unpreconditioned cg ({}) on the Laplacian",
                iters("symgs"),
                iters("none")
            );
            failed = true;
        }
        if miss_factor == Duration::ZERO {
            eprintln!("# check FAILED: the setup miss measured no factor_time");
            failed = true;
        }
        if hit_factor_max != Duration::ZERO {
            eprintln!(
                "# check FAILED: a warm solve re-paid setup ({:.1} µs)",
                hit_factor_max.as_secs_f64() * 1e6
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "# check OK: spmv bitwise, cg converges (symgs {} < none {} iters), \
             setup amortized ({:.1} µs paid once)",
            iters("symgs"),
            iters("none"),
            miss_factor.as_secs_f64() * 1e6
        );
    }
}

/// Measured STREAM-triad bandwidth (read two streams, write one).
fn stream_triad_gbs(len: usize, reps: usize) -> f64 {
    let b = vec![1.0f64; len];
    let c = vec![2.0f64; len];
    let mut a = vec![0.0f64; len];
    let s = 3.0f64;
    let t = best_of(reps, || {
        for i in 0..len {
            a[i] = b[i] + s * c[i];
        }
        std::hint::black_box(&a);
    });
    (3 * len * std::mem::size_of::<f64>()) as f64 / t / 1e9
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn push_spmv(
    entries: &mut Vec<SpmvEntry>,
    pattern: &'static str,
    n: usize,
    nnz: usize,
    threads: usize,
    t: f64,
    bytes: f64,
) {
    let gbs = bytes / t / 1e9;
    println!(
        "{pattern:>10}  n={n:<8} nnz={nnz:<9} threads={threads:<2} {t:>9.6} s  {gbs:>7.2} GB/s"
    );
    entries.push(SpmvEntry {
        pattern,
        n,
        nnz,
        threads,
        seconds: t,
        gbs,
    });
}
