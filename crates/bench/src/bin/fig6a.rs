//! Reproduces **Figure 6a**: communication volume per node for varying
//! node counts P at fixed N = 16384 (strong scaling), for all four
//! implementations, plus the model lines.
//!
//! Run with `cargo run --release --bin fig6a` (add an integer argument to
//! change N, e.g. `fig6a 4096` for a faster sweep).

use conflux_bench::experiments::{measure_all, Implementation};
use conflux_bench::format::{human_bytes, render_csv};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16384);
    let ps = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024];
    println!("# Fig. 6a reproduction: communication volume per node, N = {n}, varying P");
    println!("# (measured = simulator count; model = Table 2 leading terms)");
    println!();
    println!(
        "{:>6} | {:>12} {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "P", "LibSci", "SLATE", "CANDMC", "COnfLUX", "2D model", "COnfLUX mod"
    );

    let mut xs = Vec::new();
    let mut series: Vec<(&str, Vec<f64>)> = vec![
        ("libsci_bytes", vec![]),
        ("slate_bytes", vec![]),
        ("candmc_bytes", vec![]),
        ("conflux_bytes", vec![]),
        ("model2d_bytes", vec![]),
        ("model_conflux_bytes", vec![]),
    ];
    for p in ps {
        let ms = measure_all(n, p);
        let get = |imp: Implementation| {
            ms.iter()
                .find(|m| m.implementation == imp)
                .unwrap()
                .mean_per_rank_bytes()
        };
        let (l, s, c, x) = (
            get(Implementation::LibSci),
            get(Implementation::Slate),
            get(Implementation::Candmc),
            get(Implementation::Conflux),
        );
        let m2d = baselines::models::libsci_per_rank(n as f64, p as f64) * 8.0;
        let mcx = ms
            .iter()
            .find(|m| m.implementation == Implementation::Conflux)
            .unwrap()
            .model_per_rank
            * 8.0;
        println!(
            "{:>6} | {:>12} {:>12} {:>12} {:>12} | {:>12} {:>12}",
            p,
            human_bytes(l),
            human_bytes(s),
            human_bytes(c),
            human_bytes(x),
            human_bytes(m2d),
            human_bytes(mcx),
        );
        xs.push(p as f64);
        for (slot, val) in series.iter_mut().zip([l, s, c, x, m2d, mcx]) {
            slot.1.push(val);
        }
    }
    println!();
    println!("# CSV\n{}", render_csv("p", &xs, &series));
    println!("# paper's qualitative shape: COnfLUX lowest everywhere; 2D lines flatten");
    println!(
        "# (volume/node ~ N^2/sqrt(P) / P ranks shown per node), CANDMC above 2D at these scales."
    );
}
