//! `tracecap` — capture event timelines of a COnfLUX run and the 2D
//! partial-pivoting baseline at the same `(N, P)`, export both as Chrome
//! trace-event JSON (open in <https://ui.perfetto.dev> or
//! `chrome://tracing`), and print the observability suite: per-rank ASCII
//! timelines, the per-phase histogram, the I/O lower-bound gauge
//! (`2N³/(3P√M)`), and both critical-path reports.
//!
//! The headline comparison is Section 7.3's latency claim: tournament
//! pivoting needs `O(N/v)` pivoting rounds where partial pivoting needs
//! `O(N)` — so COnfLUX's pivoting phase must contribute a shorter latency
//! (α) chain to the critical path than the baseline's per-column pivot
//! allreduce at the same `(N, P)`.
//!
//! Usage: `cargo run --release --bin tracecap -- [--n N] [--p P]
//! [--out PATH] [--check]`

use baselines::lu2d::{factorize_2d, Lu2dConfig, Variant};
use conflux::grid::choose_grid;
use conflux::{factorize, ConfluxConfig, Mode};
use conflux_bench::experiments::{fig6_memory_elems, pick_block_size};

fn arg_usize(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v}")))
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = arg_usize(&args, "--n", 1024);
    let p = arg_usize(&args, "--p", 64);
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../..", env!("CARGO_MANIFEST_DIR")));

    // ---- traced COnfLUX run (Phantom: volumes + timeline, no numerics) ----
    let m = fig6_memory_elems(n, p);
    let grid = choose_grid(p, n, m);
    let v = pick_block_size(n, grid.q, grid.c);
    println!(
        "# tracecap: N={n} P={p} grid=[{q},{q},{c}] v={v} (M={m} elements/rank)",
        q = grid.q,
        c = grid.c
    );
    let run = factorize(&ConfluxConfig::phantom(n, v, grid).with_timeline(), None);
    let trace = run.timeline.expect("timeline was requested");

    // the timeline must reconcile exactly with the accountant
    assert_eq!(
        trace.rebuild_stats().phase_table(),
        run.stats.phase_table(),
        "trace does not reconcile with CommStats"
    );

    println!("\n## COnfLUX per-rank timeline (virtual time)");
    print!("{}", trace.timeline_ascii(96, 8));
    println!("\n## COnfLUX per-phase traffic");
    print!("{}", trace.phase_histogram());

    // Theorem 2 lower bound on per-rank I/O: 2N³/(3P√M) elements
    let bound = 2.0 * (n as f64).powi(3) / (3.0 * p as f64 * (m as f64).sqrt());
    println!("\n## I/O lower-bound gauge (2N³/(3P√M))");
    print!("{}", trace.lower_bound_gauge(bound));

    let cp = trace.critical_path();
    println!("\n## COnfLUX critical path");
    print!("{}", cp.report());

    // ---- the partial-pivoting baseline at the same (N, P) ----
    let bcfg = Lu2dConfig::for_ranks(n, p, Variant::LibSci, Mode::Phantom).with_timeline();
    let brun = factorize_2d(&bcfg, None);
    let btrace = brun.timeline.expect("timeline was requested");
    assert_eq!(
        btrace.rebuild_stats().phase_table(),
        brun.stats.phase_table(),
        "baseline trace does not reconcile with CommStats"
    );
    let bcp = btrace.critical_path();
    println!("\n## LibSci-style 2D (partial pivoting) critical path");
    print!("{}", bcp.report());

    // ---- Section 7.3: pivoting latency chains ----
    let ours = cp.phase_cost("02:tournament").map_or(0.0, |c| c.alpha);
    let theirs = bcp
        .phase_cost("panel:pivot-allreduce")
        .map_or(0.0, |c| c.alpha);
    println!("\n## pivoting latency on the critical path");
    println!(
        "  COnfLUX  02:tournament          {:>12.1} us  (O(N/v) = {} pivot rounds)",
        ours * 1e6,
        n / v
    );
    println!(
        "  LibSci   panel:pivot-allreduce  {:>12.1} us  (O(N) = {} pivot columns)",
        theirs * 1e6,
        n
    );
    let ok = ours < theirs;
    println!(
        "  => tournament chain {} the per-column allreduce chain",
        if ok { "BEATS" } else { "DOES NOT BEAT" }
    );

    // ---- Chrome trace-event JSON for Perfetto / chrome://tracing ----
    let conflux_path = format!("{out}/TRACE_conflux.json");
    let lu2d_path = format!("{out}/TRACE_lu2d.json");
    std::fs::write(&conflux_path, trace.to_chrome_trace()).expect("write conflux trace");
    std::fs::write(&lu2d_path, btrace.to_chrome_trace()).expect("write lu2d trace");
    println!("\n# wrote {conflux_path}");
    println!("# wrote {lu2d_path}");
    println!("# open either file at https://ui.perfetto.dev");

    if check && !ok {
        eprintln!("# check FAILED: tournament latency chain did not beat partial pivoting");
        std::process::exit(1);
    }
}
