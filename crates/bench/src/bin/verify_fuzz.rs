//! `verify-fuzz` — the deterministic fuzz campaign driving the `verifier`
//! crate's differential oracle over the whole stack.
//!
//! Each scenario seed expands into a randomized LU/Cholesky/solve workload
//! that is run through every applicable implementation (serial, orchestrated
//! COnfLUX, threaded SPMD, 2D and CANDMC baselines, the solver service) with
//! the invariant battery applied to every run. Failures are shrunk to
//! minimal reproducers and appended to the corpus file, which
//! `tests/verify_corpus.rs` replays forever after.
//!
//! Usage: `cargo run --release -p conflux-bench --bin verify_fuzz --
//! [--scenarios N] [--seed S] [--check] [--out PATH] [--corpus PATH]
//! [--no-corpus-write]`
//!
//! `--check` exits nonzero if any scenario fails (the CI gate).

use std::path::PathBuf;
use std::time::Instant;

use verifier::{corpus, minimize, run_scenario, FuzzSummary, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let no_corpus_write = args.iter().any(|a| a == "--no-corpus-write");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scenarios: usize = flag("--scenarios")
        .map(|s| s.parse().expect("--scenarios wants a number"))
        .unwrap_or(200);
    let base_seed: u64 = flag("--seed")
        .map(|s| s.parse().expect("--seed wants a number"))
        .unwrap_or(0);
    let out_path = flag("--out")
        .unwrap_or_else(|| format!("{}/../../BENCH_verify.json", env!("CARGO_MANIFEST_DIR")));
    let corpus_path = PathBuf::from(flag("--corpus").unwrap_or_else(|| {
        format!(
            "{}/../../tests/corpus/verify_seeds.txt",
            env!("CARGO_MANIFEST_DIR")
        )
    }));

    let started = Instant::now();
    let mut summary = FuzzSummary::default();

    // ---- replay the persisted corpus first: fixed bugs stay fixed ----
    let corpus_scenarios = corpus::load(&corpus_path).unwrap_or_else(|e| {
        eprintln!("corpus unreadable: {e}");
        std::process::exit(2);
    });
    if !corpus_scenarios.is_empty() {
        println!("# replaying {} corpus scenario(s)", corpus_scenarios.len());
    }
    for sc in &corpus_scenarios {
        let report = run_scenario(sc);
        if !report.passed() {
            println!("{}", report.summary());
        }
        summary.absorb(&report, None);
    }

    // ---- the fresh seeded sweep ----
    println!("# fuzzing {scenarios} scenario(s) from seed {base_seed}");
    for i in 0..scenarios {
        let seed = base_seed + i as u64;
        let sc = Scenario::from_seed(seed);
        let report = run_scenario(&sc);
        if report.passed() {
            summary.absorb(&report, None);
        } else {
            println!("seed {seed}: {}", report.summary());
            for o in report.failures() {
                let detail: String = o.detail.chars().take(400).collect();
                println!("    {}: {detail}", o.name);
            }
            // shrink to a minimal reproducer that still fails any check
            let (shrunk, steps) = minimize(&sc, |cand| !run_scenario(cand).passed());
            if steps > 0 {
                println!("  shrunk in {steps} step(s) to: {shrunk}");
            }
            let why = format!(
                "seed {seed}: {}",
                report
                    .failures()
                    .iter()
                    .map(|o| o.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            if !no_corpus_write {
                match corpus::append(&corpus_path, &shrunk, &why) {
                    Ok(true) => println!("  recorded in {}", corpus_path.display()),
                    Ok(false) => println!("  already in corpus"),
                    Err(e) => eprintln!("  corpus write failed: {e}"),
                }
            }
            summary.absorb(&report, Some(&shrunk));
        }
        if (i + 1) % 25 == 0 {
            println!(
                "# {}/{scenarios} done, {} failure(s), {:.1}s",
                i + 1,
                summary.failures.len(),
                started.elapsed().as_secs_f64()
            );
        }
    }

    let json = summary.to_json(scenarios, base_seed);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
    } else {
        println!("# wrote {out_path}");
    }
    println!(
        "# verify-fuzz: {}/{} scenarios passed in {:.1}s",
        summary.passed,
        summary.total,
        started.elapsed().as_secs_f64()
    );
    for (sc, names, _) in &summary.failures {
        println!("#   FAIL [{}] {sc}", names.join(", "));
    }
    if check && !summary.clean() {
        std::process::exit(1);
    }
}
