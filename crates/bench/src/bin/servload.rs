//! `servload` — load generator for the `solversrv` factor-and-solve
//! service.
//!
//! Two experiments, one JSON artifact (`BENCH_service.json`):
//!
//! * **hot** — closed-loop clients hammering one cached factor at
//!   concurrency 1 vs 8. Concurrent same-factor requests coalesce into
//!   multi-RHS batches, so the factor streams from memory once per batch
//!   instead of once per request: the throughput ratio is the batching
//!   win (`--check` gates it at ≥ 2x).
//! * **zipf** — a multi-tenant popularity-skewed workload (Zipf `s = 1.1`
//!   over many matrices) against a deliberately undersized factor cache;
//!   the steady-state cache hit rate is the amortization the service
//!   exists to deliver (`--check` gates it at > 0.5).
//!
//! Usage: `cargo run --release -p conflux-bench --bin servload --
//! [--quick] [--check] [--out PATH]`

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use denselin::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::RetryPolicy;
use solversrv::{serve, solve_with_retry, MatrixKind, ServiceConfig, SolveRequest};

struct HotResult {
    concurrency: usize,
    requests: u64,
    rps: f64,
    mean_batch: f64,
    max_batch: usize,
    p99_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_service.json", env!("CARGO_MANIFEST_DIR")));

    // ---- hot: batching win on one cached factor ----
    let hot_n = if quick { 384 } else { 768 };
    let per_client = if quick { 40 } else { 60 };
    println!("# servload hot: n={hot_n}, {per_client} requests/client, 2 workers");
    let hot: Vec<HotResult> = [1usize, 8]
        .iter()
        .map(|&conc| hot_run(hot_n, conc, per_client))
        .collect();
    let batching_speedup = hot[1].rps / hot[0].rps;
    println!(
        "# batching speedup: {batching_speedup:.2}x (conc 8 {:.0} rps vs conc 1 {:.0} rps, mean batch {:.2})",
        hot[1].rps, hot[0].rps, hot[1].mean_batch
    );

    // ---- zipf: cache hit rate under popularity skew ----
    let zipf_s = 1.1;
    let tenants = if quick { 16 } else { 32 };
    let zipf_n = 192;
    let zipf_per_client = if quick { 25 } else { 50 };
    let zipf_clients = 8;
    println!(
        "# servload zipf: s={zipf_s}, {tenants} matrices of n={zipf_n}, {zipf_clients}x{zipf_per_client} requests"
    );
    let (hit_rate, evictions, zipf_rps, zipf_requests) =
        zipf_run(zipf_s, tenants, zipf_n, zipf_clients, zipf_per_client);
    println!(
        "# zipf hit rate: {:.1}% ({} evictions, {:.0} rps)",
        100.0 * hit_rate,
        evictions,
        zipf_rps
    );

    // ---- render BENCH_service.json (hand-rolled: no serde in-tree) ----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_service/v1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"hot\": {{");
    let _ = writeln!(json, "    \"n\": {hot_n},");
    let _ = writeln!(json, "    \"batching_speedup\": {batching_speedup:.3},");
    json.push_str("    \"runs\": [\n");
    for (i, r) in hot.iter().enumerate() {
        let comma = if i + 1 < hot.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{ \"concurrency\": {}, \"requests\": {}, \"rps\": {:.1}, \"mean_batch\": {:.3}, \"max_batch\": {}, \"p99_ms\": {:.3} }}{comma}",
            r.concurrency, r.requests, r.rps, r.mean_batch, r.max_batch, r.p99_ms
        );
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(json, "  \"zipf\": {{");
    let _ = writeln!(json, "    \"s\": {zipf_s},");
    let _ = writeln!(json, "    \"matrices\": {tenants},");
    let _ = writeln!(json, "    \"n\": {zipf_n},");
    let _ = writeln!(json, "    \"requests\": {zipf_requests},");
    let _ = writeln!(json, "    \"hit_rate\": {hit_rate:.4},");
    let _ = writeln!(json, "    \"evictions\": {evictions},");
    let _ = writeln!(json, "    \"rps\": {zipf_rps:.1}");
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_service.json");
    println!("# wrote {out_path}");

    if check {
        if batching_speedup >= 2.0 {
            println!("# check OK: batching gives {batching_speedup:.2}x at concurrency 8");
        } else {
            eprintln!("# check FAILED: batching speedup {batching_speedup:.2}x < 2.0x");
            std::process::exit(1);
        }
        if hit_rate > 0.5 {
            println!("# check OK: zipf hit rate {:.1}% > 50%", 100.0 * hit_rate);
        } else {
            eprintln!(
                "# check FAILED: zipf hit rate {:.1}% <= 50%",
                100.0 * hit_rate
            );
            std::process::exit(1);
        }
    }
}

/// Closed-loop clients against a single pre-warmed factor.
fn hot_run(n: usize, concurrency: usize, per_client: usize) -> HotResult {
    let mut rng = StdRng::seed_from_u64(7001);
    let a = Matrix::random_diagonally_dominant(&mut rng, n);
    let b = Matrix::random(&mut rng, n, 1);
    let cfg = ServiceConfig {
        workers: 2,
        max_queue: 256, // generous: this phase measures batching, not admission
        ..ServiceConfig::default()
    };
    let policy = RetryPolicy {
        max_retries: 10_000,
        ..RetryPolicy::default()
    };
    let (elapsed_s, report) = serve(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b.clone())).unwrap(); // warm the factor
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..concurrency {
                s.spawn(|| {
                    for _ in 0..per_client {
                        solve_with_retry(h, &SolveRequest::new(1, b.clone()), &policy)
                            .expect("hot request failed");
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    });
    let requests = (concurrency * per_client) as u64;
    let r = HotResult {
        concurrency,
        requests,
        rps: requests as f64 / elapsed_s,
        mean_batch: report.stats.mean_batch(),
        max_batch: report.stats.max_batch,
        p99_ms: report.stats.p99_latency.as_secs_f64() * 1e3,
    };
    println!(
        "servload hot   conc={:<2} {:>6} req  {:>9.1} rps  mean_batch={:.2} max_batch={} p99={:.3} ms",
        r.concurrency, r.requests, r.rps, r.mean_batch, r.max_batch, r.p99_ms
    );
    r
}

/// Popularity-skewed multi-tenant load against an undersized cache.
fn zipf_run(
    s: f64,
    tenants: usize,
    n: usize,
    clients: usize,
    per_client: usize,
) -> (f64, u64, f64, u64) {
    // register `tenants` distinct matrices; size the cache for ~1/3 of them
    let factor_bytes = n * n * std::mem::size_of::<f64>() + n * std::mem::size_of::<usize>();
    let cfg = ServiceConfig {
        workers: 2,
        max_queue: 256,
        cache_budget_bytes: factor_bytes * tenants / 3 + factor_bytes / 2,
        ..ServiceConfig::default()
    };
    // inverse-CDF Zipf sampler: weight of tenant i ∝ 1/(i+1)^s
    let weights: Vec<f64> = (0..tenants)
        .map(|i| 1.0 / ((i + 1) as f64).powf(s))
        .collect();
    let total: f64 = weights.iter().sum();
    let cdf: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total;
            Some(*acc)
        })
        .collect();
    let policy = RetryPolicy {
        max_retries: 10_000,
        ..RetryPolicy::default()
    };
    let completed = AtomicU64::new(0);
    let (elapsed_s, report) = serve(cfg, |h| {
        let mut rng = StdRng::seed_from_u64(9000);
        for id in 0..tenants as u64 {
            let a = Matrix::random_diagonally_dominant(&mut rng, n);
            h.register_matrix(id, a, MatrixKind::General);
        }
        let start = Instant::now();
        std::thread::scope(|sc| {
            for c in 0..clients {
                let cdf = &cdf;
                let completed = &completed;
                let policy = &policy;
                sc.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(9100 + c as u64);
                    let mut rhs_rng = StdRng::seed_from_u64(9200 + c as u64);
                    for _ in 0..per_client {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        let id = cdf.partition_point(|&p| p < u).min(cdf.len() - 1) as u64;
                        let b = Matrix::random(&mut rhs_rng, n, 1);
                        solve_with_retry(h, &SolveRequest::new(id, b), policy)
                            .expect("zipf request failed");
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    });
    let requests = completed.load(Ordering::Relaxed);
    assert_eq!(requests, report.stats.completed, "no silent drops");
    (
        report.stats.hit_rate(),
        report.stats.cache_evictions,
        requests as f64 / elapsed_s,
        requests,
    )
}
