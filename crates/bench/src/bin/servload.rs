//! `servload` — load generator for the `solversrv` factor-and-solve
//! service.
//!
//! Two experiments, one JSON artifact (`BENCH_service.json`):
//!
//! * **hot** — closed-loop clients hammering one cached factor at
//!   concurrency 1 vs 8. Concurrent same-factor requests coalesce into
//!   multi-RHS batches, so the factor streams from memory once per batch
//!   instead of once per request: the throughput ratio is the batching
//!   win (`--check` gates it at ≥ 2x).
//! * **zipf** — a multi-tenant popularity-skewed workload (Zipf `s = 1.1`
//!   over many matrices) against a deliberately undersized factor cache;
//!   the steady-state cache hit rate is the amortization the service
//!   exists to deliver (`--check` gates it at > 0.5).
//! * **cluster** (`--cluster`) — the chaos experiment: a sharded,
//!   replicated cluster under Zipf steady-state traffic followed by a
//!   flash crowd, while a `simnet::FaultPlan` kills the hottest tenant's
//!   primary shard mid-run and revives it later. Measures availability,
//!   client-side p99/p999 per phase, and the zero-lost-ticket /
//!   zero-stale-response invariants (`--check` gates all of them).
//!
//! Usage: `cargo run --release -p conflux-bench --bin servload --
//! [--quick] [--check] [--cluster] [--out PATH]`

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use denselin::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{FaultPlan, RetryPolicy};
use solversrv::{
    serve, serve_cluster, solve_with_retry, solve_with_retry_seeded, ClusterConfig, Fingerprint,
    HashRing, MatrixKind, ServiceConfig, SolveRequest,
};

struct HotResult {
    concurrency: usize,
    requests: u64,
    rps: f64,
    mean_batch: f64,
    max_batch: usize,
    p99_ms: f64,
}

/// Client-side latency summary for one phase of the cluster experiment.
struct PhaseResult {
    requests: u64,
    ok: u64,
    failed: u64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

struct ClusterOutcome {
    shards: usize,
    replicas: usize,
    tenants: usize,
    n: usize,
    victim: usize,
    steady: PhaseResult,
    flash: PhaseResult,
    availability: f64,
    p99_ratio: f64,
    crashes: u64,
    revives: u64,
    failovers: u64,
    replicated: u64,
    rebalanced: u64,
    lost_tickets: i64,
    stale_responses: u64,
    hit_rate: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let cluster = args.iter().any(|a| a == "--cluster");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_service.json", env!("CARGO_MANIFEST_DIR")));

    // ---- hot: batching win on one cached factor ----
    let hot_n = if quick { 384 } else { 768 };
    let per_client = if quick { 40 } else { 60 };
    println!("# servload hot: n={hot_n}, {per_client} requests/client, 2 workers");
    let hot: Vec<HotResult> = [1usize, 8]
        .iter()
        .map(|&conc| hot_run(hot_n, conc, per_client))
        .collect();
    let batching_speedup = hot[1].rps / hot[0].rps;
    println!(
        "# batching speedup: {batching_speedup:.2}x (conc 8 {:.0} rps vs conc 1 {:.0} rps, mean batch {:.2})",
        hot[1].rps, hot[0].rps, hot[1].mean_batch
    );

    // ---- zipf: cache hit rate under popularity skew ----
    let zipf_s = 1.1;
    let tenants = if quick { 16 } else { 32 };
    let zipf_n = 192;
    let zipf_per_client = if quick { 25 } else { 50 };
    let zipf_clients = 8;
    println!(
        "# servload zipf: s={zipf_s}, {tenants} matrices of n={zipf_n}, {zipf_clients}x{zipf_per_client} requests"
    );
    let (hit_rate, evictions, zipf_rps, zipf_requests) =
        zipf_run(zipf_s, tenants, zipf_n, zipf_clients, zipf_per_client);
    println!(
        "# zipf hit rate: {:.1}% ({} evictions, {:.0} rps)",
        100.0 * hit_rate,
        evictions,
        zipf_rps
    );

    // ---- cluster: sharded chaos experiment (opt-in: --cluster) ----
    let co = if cluster {
        let co = cluster_run(quick);
        println!(
            "# cluster availability: {:.4} ({} crash, {} revive, {} failovers, p99 ratio {:.2}x)",
            co.availability, co.crashes, co.revives, co.failovers, co.p99_ratio
        );
        Some(co)
    } else {
        None
    };

    // ---- render BENCH_service.json (hand-rolled: no serde in-tree) ----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_service/v2\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"hot\": {{");
    let _ = writeln!(json, "    \"n\": {hot_n},");
    let _ = writeln!(json, "    \"batching_speedup\": {batching_speedup:.3},");
    json.push_str("    \"runs\": [\n");
    for (i, r) in hot.iter().enumerate() {
        let comma = if i + 1 < hot.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{ \"concurrency\": {}, \"requests\": {}, \"rps\": {:.1}, \"mean_batch\": {:.3}, \"max_batch\": {}, \"p99_ms\": {:.3} }}{comma}",
            r.concurrency, r.requests, r.rps, r.mean_batch, r.max_batch, r.p99_ms
        );
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(json, "  \"zipf\": {{");
    let _ = writeln!(json, "    \"s\": {zipf_s},");
    let _ = writeln!(json, "    \"matrices\": {tenants},");
    let _ = writeln!(json, "    \"n\": {zipf_n},");
    let _ = writeln!(json, "    \"requests\": {zipf_requests},");
    let _ = writeln!(json, "    \"hit_rate\": {hit_rate:.4},");
    let _ = writeln!(json, "    \"evictions\": {evictions},");
    let _ = writeln!(json, "    \"rps\": {zipf_rps:.1}");
    match &co {
        None => json.push_str("  },\n  \"cluster\": null\n}\n"),
        Some(co) => {
            json.push_str("  },\n");
            let _ = writeln!(json, "  \"cluster\": {{");
            let _ = writeln!(json, "    \"shards\": {},", co.shards);
            let _ = writeln!(json, "    \"replicas\": {},", co.replicas);
            let _ = writeln!(json, "    \"tenants\": {},", co.tenants);
            let _ = writeln!(json, "    \"n\": {},", co.n);
            let _ = writeln!(json, "    \"victim_shard\": {},", co.victim);
            for (name, p) in [("steady", &co.steady), ("flash", &co.flash)] {
                let _ = writeln!(
                    json,
                    "    \"{name}\": {{ \"requests\": {}, \"ok\": {}, \"failed\": {}, \"rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3} }},",
                    p.requests, p.ok, p.failed, p.rps, p.p50_ms, p.p99_ms, p.p999_ms
                );
            }
            let _ = writeln!(json, "    \"availability\": {:.6},", co.availability);
            let _ = writeln!(json, "    \"p99_ratio\": {:.3},", co.p99_ratio);
            let _ = writeln!(json, "    \"crashes\": {},", co.crashes);
            let _ = writeln!(json, "    \"revives\": {},", co.revives);
            let _ = writeln!(json, "    \"failovers\": {},", co.failovers);
            let _ = writeln!(json, "    \"replicated_factors\": {},", co.replicated);
            let _ = writeln!(json, "    \"rebalanced_factors\": {},", co.rebalanced);
            let _ = writeln!(json, "    \"lost_tickets\": {},", co.lost_tickets);
            let _ = writeln!(json, "    \"stale_responses\": {},", co.stale_responses);
            let _ = writeln!(json, "    \"hit_rate\": {:.4}", co.hit_rate);
            json.push_str("  }\n}\n");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH_service.json");
    println!("# wrote {out_path}");

    if check {
        if batching_speedup >= 2.0 {
            println!("# check OK: batching gives {batching_speedup:.2}x at concurrency 8");
        } else {
            eprintln!("# check FAILED: batching speedup {batching_speedup:.2}x < 2.0x");
            std::process::exit(1);
        }
        if hit_rate > 0.5 {
            println!("# check OK: zipf hit rate {:.1}% > 50%", 100.0 * hit_rate);
        } else {
            eprintln!(
                "# check FAILED: zipf hit rate {:.1}% <= 50%",
                100.0 * hit_rate
            );
            std::process::exit(1);
        }
        if let Some(co) = &co {
            let mut ok = true;
            let mut gate = |pass: bool, name: &str, detail: String| {
                if pass {
                    println!("# check OK: {name} ({detail})");
                } else {
                    eprintln!("# check FAILED: {name} ({detail})");
                    ok = false;
                }
            };
            gate(
                co.lost_tickets == 0,
                "zero lost tickets",
                format!("{} unaccounted", co.lost_tickets),
            );
            gate(
                co.stale_responses == 0,
                "zero stale responses",
                format!("{} fingerprint mismatches", co.stale_responses),
            );
            gate(
                co.availability >= 0.99,
                "availability >= 99%",
                format!("{:.4}", co.availability),
            );
            gate(
                co.p99_ratio <= 3.0,
                "post-failover p99 <= 3x steady-state",
                format!("{:.2}x", co.p99_ratio),
            );
            gate(
                co.crashes >= 1 && co.revives >= 1,
                "chaos actually fired",
                format!("{} crashes, {} revives", co.crashes, co.revives),
            );
            if !ok {
                std::process::exit(1);
            }
        }
    }
}

/// p-th percentile (nearest-rank) of an unsorted latency sample, in ms.
fn percentile_ms(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx] * 1e3
}

/// One closed-loop traffic phase against the cluster: `clients` threads
/// each issue `per_client` Zipf-distributed requests (with probability
/// `hot_bias` the request goes to tenant 0 — the flash crowd), retrying
/// transient errors with per-client jitter seeds, and recording wall-clock
/// latency plus the fingerprint echo for the zero-stale audit.
#[allow(clippy::too_many_arguments)]
fn cluster_phase(
    h: &solversrv::ClusterHandle,
    clients: usize,
    per_client: usize,
    n: usize,
    hot_bias: f64,
    seed_base: u64,
    cdf: &[f64],
    fps: &[Fingerprint],
    policy: &RetryPolicy,
    stale: &AtomicU64,
) -> PhaseResult {
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let lat = Mutex::new(Vec::with_capacity(clients * per_client));
    let start = Instant::now();
    std::thread::scope(|sc| {
        for c in 0..clients {
            let (ok, failed, lat, stale) = (&ok, &failed, &lat, stale);
            sc.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed_base + c as u64);
                let mut rhs_rng = StdRng::seed_from_u64(seed_base + 100 + c as u64);
                let mut local = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let id = if hot_bias > 0.0 && rng.gen_range(0.0..1.0) < hot_bias {
                        0u64
                    } else {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        cdf.partition_point(|&p| p < u).min(cdf.len() - 1) as u64
                    };
                    let b = Matrix::random(&mut rhs_rng, n, 1);
                    let t0 = Instant::now();
                    let jitter_seed = seed_base ^ ((c as u64) << 32) ^ r as u64;
                    match solve_with_retry_seeded(h, &SolveRequest::new(id, b), policy, jitter_seed)
                    {
                        Ok(resp) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if resp.stats.fingerprint != Some(fps[id as usize]) {
                                stale.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    local.push(t0.elapsed().as_secs_f64());
                }
                lat.lock().unwrap().extend(local);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut samples = lat.into_inner().unwrap();
    let requests = (clients * per_client) as u64;
    PhaseResult {
        requests,
        ok: ok.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        rps: requests as f64 / elapsed,
        p50_ms: percentile_ms(&mut samples, 0.50),
        p99_ms: percentile_ms(&mut samples, 0.99),
        p999_ms: percentile_ms(&mut samples, 0.999),
    }
}

/// The chaos experiment: Zipf steady state, then a flash crowd on tenant
/// 0, while a `FaultPlan` kills tenant 0's primary shard at a
/// deterministic fail-point step and revives it later on the cluster's
/// submission clock. Availability and tail latency are measured
/// client-side; ticket loss and staleness come from the cluster's own
/// accounting plus the fingerprint echo on every response.
fn cluster_run(quick: bool) -> ClusterOutcome {
    let shards = 4;
    let replicas = 2;
    let tenants = if quick { 8 } else { 12 };
    let n = if quick { 128 } else { 160 };
    let (steady_clients, steady_per) = (4, if quick { 20 } else { 30 });
    let (flash_clients, flash_per) = (8, if quick { 30 } else { 60 });
    println!(
        "# servload cluster: {shards} shards x{replicas}, {tenants} tenants n={n}, steady {steady_clients}x{steady_per} then flash {flash_clients}x{flash_per}"
    );

    let mut rng = StdRng::seed_from_u64(11_000);
    let mats: Vec<Matrix> = (0..tenants)
        .map(|_| Matrix::random_diagonally_dominant(&mut rng, n))
        .collect();
    let fps: Vec<Fingerprint> = mats.iter().map(Fingerprint::of).collect();
    // the flash crowd hammers tenant 0, so its ring primary is the shard
    // whose death hurts the most — that's the one the plan kills
    let victim = HashRing::new(shards).route(fps[0], replicas)[0];
    // crash on the victim's fail-point clock (it ticks only as the victim
    // processes work, so this lands mid-traffic); revive on the cluster's
    // submission clock, well before the flash crowd drains
    let (crash_step, revive_at) = if quick { (60, 200) } else { (150, 400) };
    let cfg = ClusterConfig {
        shards,
        replicas,
        workers_per_shard: 1,
        max_queue: 256,
        faults: FaultPlan::new(4242)
            .with_crash(victim, crash_step)
            .with_revive(victim, revive_at),
        ..ClusterConfig::default()
    };
    let policy = RetryPolicy {
        max_retries: 10_000,
        ..RetryPolicy::default()
    };
    // same inverse-CDF Zipf sampler as zipf_run
    let s = 1.1;
    let weights: Vec<f64> = (0..tenants)
        .map(|i| 1.0 / ((i + 1) as f64).powf(s))
        .collect();
    let total: f64 = weights.iter().sum();
    let cdf: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total;
            Some(*acc)
        })
        .collect();
    let stale = AtomicU64::new(0);
    let ((steady, flash), report) = serve_cluster(cfg, |h| {
        for (id, a) in mats.iter().enumerate() {
            h.register_matrix(id as u64, a.clone(), MatrixKind::General);
        }
        let steady = cluster_phase(
            h,
            steady_clients,
            steady_per,
            n,
            0.0,
            11_100,
            &cdf,
            &fps,
            &policy,
            &stale,
        );
        let flash = cluster_phase(
            h,
            flash_clients,
            flash_per,
            n,
            0.5,
            11_200,
            &cdf,
            &fps,
            &policy,
            &stale,
        );
        (steady, flash)
    });
    let st = &report.stats;
    let resolved = st.service.completed + st.service.failed + st.service.deadline_misses;
    let requests = steady.requests + flash.requests;
    let ok_total = steady.ok + flash.ok;
    let p99_ratio = if steady.p99_ms > 0.0 {
        flash.p99_ms / steady.p99_ms
    } else {
        1.0
    };
    println!(
        "servload cluster steady: {:>5} req {:>8.1} rps p50={:.3} p99={:.3} p999={:.3} ms",
        steady.requests, steady.rps, steady.p50_ms, steady.p99_ms, steady.p999_ms
    );
    println!(
        "servload cluster flash:  {:>5} req {:>8.1} rps p50={:.3} p99={:.3} p999={:.3} ms",
        flash.requests, flash.rps, flash.p50_ms, flash.p99_ms, flash.p999_ms
    );
    ClusterOutcome {
        shards,
        replicas,
        tenants,
        n,
        victim,
        steady,
        flash,
        availability: ok_total as f64 / requests as f64,
        p99_ratio,
        crashes: st.crashes,
        revives: st.revives,
        failovers: st.failovers,
        replicated: st.replicated_factors,
        rebalanced: st.rebalanced_factors,
        lost_tickets: st.service.submitted as i64 - resolved as i64,
        stale_responses: stale.load(Ordering::Relaxed),
        hit_rate: st.service.hit_rate(),
    }
}

/// Closed-loop clients against a single pre-warmed factor.
fn hot_run(n: usize, concurrency: usize, per_client: usize) -> HotResult {
    let mut rng = StdRng::seed_from_u64(7001);
    let a = Matrix::random_diagonally_dominant(&mut rng, n);
    let b = Matrix::random(&mut rng, n, 1);
    let cfg = ServiceConfig {
        workers: 2,
        max_queue: 256, // generous: this phase measures batching, not admission
        ..ServiceConfig::default()
    };
    let policy = RetryPolicy {
        max_retries: 10_000,
        ..RetryPolicy::default()
    };
    let (elapsed_s, report) = serve(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b.clone())).unwrap(); // warm the factor
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..concurrency {
                s.spawn(|| {
                    for _ in 0..per_client {
                        solve_with_retry(h, &SolveRequest::new(1, b.clone()), &policy)
                            .expect("hot request failed");
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    });
    let requests = (concurrency * per_client) as u64;
    let r = HotResult {
        concurrency,
        requests,
        rps: requests as f64 / elapsed_s,
        mean_batch: report.stats.mean_batch(),
        max_batch: report.stats.max_batch,
        p99_ms: report.stats.p99_latency.as_secs_f64() * 1e3,
    };
    println!(
        "servload hot   conc={:<2} {:>6} req  {:>9.1} rps  mean_batch={:.2} max_batch={} p99={:.3} ms",
        r.concurrency, r.requests, r.rps, r.mean_batch, r.max_batch, r.p99_ms
    );
    r
}

/// Popularity-skewed multi-tenant load against an undersized cache.
fn zipf_run(
    s: f64,
    tenants: usize,
    n: usize,
    clients: usize,
    per_client: usize,
) -> (f64, u64, f64, u64) {
    // register `tenants` distinct matrices; size the cache for ~1/3 of them
    let factor_bytes = n * n * std::mem::size_of::<f64>() + n * std::mem::size_of::<usize>();
    let cfg = ServiceConfig {
        workers: 2,
        max_queue: 256,
        cache_budget_bytes: factor_bytes * tenants / 3 + factor_bytes / 2,
        ..ServiceConfig::default()
    };
    // inverse-CDF Zipf sampler: weight of tenant i ∝ 1/(i+1)^s
    let weights: Vec<f64> = (0..tenants)
        .map(|i| 1.0 / ((i + 1) as f64).powf(s))
        .collect();
    let total: f64 = weights.iter().sum();
    let cdf: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total;
            Some(*acc)
        })
        .collect();
    let policy = RetryPolicy {
        max_retries: 10_000,
        ..RetryPolicy::default()
    };
    let completed = AtomicU64::new(0);
    let (elapsed_s, report) = serve(cfg, |h| {
        let mut rng = StdRng::seed_from_u64(9000);
        for id in 0..tenants as u64 {
            let a = Matrix::random_diagonally_dominant(&mut rng, n);
            h.register_matrix(id, a, MatrixKind::General);
        }
        let start = Instant::now();
        std::thread::scope(|sc| {
            for c in 0..clients {
                let cdf = &cdf;
                let completed = &completed;
                let policy = &policy;
                sc.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(9100 + c as u64);
                    let mut rhs_rng = StdRng::seed_from_u64(9200 + c as u64);
                    for _ in 0..per_client {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        let id = cdf.partition_point(|&p| p < u).min(cdf.len() - 1) as u64;
                        let b = Matrix::random(&mut rhs_rng, n, 1);
                        solve_with_retry(h, &SolveRequest::new(id, b), policy)
                            .expect("zipf request failed");
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    });
    let requests = completed.load(Ordering::Relaxed);
    assert_eq!(requests, report.stats.completed, "no silent drops");
    (
        report.stats.hit_rate(),
        report.stats.cache_evictions,
        requests as f64 / elapsed_s,
        requests,
    )
}
