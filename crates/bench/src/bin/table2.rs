//! Reproduces **Table 2**: total communication volume, measured (simulated)
//! vs modeled, for N ∈ {4096, 16384} and P ∈ {64, 1024}, across LibSci,
//! SLATE, CANDMC, and COnfLUX.
//!
//! Run with `cargo run --release --bin table2`.

use conflux_bench::experiments::{measure_all, Implementation};
use conflux_bench::format::table2_cell;

fn main() {
    println!("# Table 2 reproduction: total comm. volume measured/modeled [GB] (prediction %)");
    println!("# memory regime: M = N^2 / P^(2/3)  (max replication c = P^(1/3), as in the paper)");
    println!();
    for n in [4096usize, 16384] {
        println!("## N = {n}");
        println!(
            "{:>8} | {:>24} | {:>24} | {:>24} | {:>24}",
            "P", "LibSci", "SLATE", "CANDMC", "COnfLUX"
        );
        for p in [64usize, 1024] {
            let ms = measure_all(n, p);
            let cell = |imp: Implementation| {
                table2_cell(ms.iter().find(|m| m.implementation == imp).unwrap())
            };
            println!(
                "{:>8} | {:>24} | {:>24} | {:>24} | {:>24}",
                p,
                cell(Implementation::LibSci),
                cell(Implementation::Slate),
                cell(Implementation::Candmc),
                cell(Implementation::Conflux),
            );
        }
        println!();
    }
    println!("# paper (measured/modeled GB): N=4096   P=64:   1.17/1.21  1.18/1.21  2.5/4.9    1.11/1.08");
    println!("#                              N=4096   P=1024: 4.45/4.43  4.35/4.43  9.3/12.13  3.13/3.07");
    println!("#                              N=16384  P=64:   18.79/19.33 18.84/19.33 39.8/78.74 17.61/17.19");
    println!("#                              N=16384  P=1024: 70.91/70.87 71.1/70.87 144/194.09 45.42/44.77");
}
