//! `tune` — the persistent microkernel/blocking autotuner.
//!
//! Sweeps the generated microkernel variant table
//! (`denselin::microkernels`) against a `(mc, kc, nc)` blocking grid and
//! thread counts (warmup runs, repeated timed runs, median — see
//! `denselin::tune`), writes the full search surface to
//! `BENCH_tuning.json` at the repo root, and persists the winning
//! `(kernel, blocking)` pair to the per-host tuning file
//! (`$DENSELIN_TUNING_FILE`, else `~/.cache/denselin/tuning.toml`) that
//! `GemmBlocking::tuned()` and `selected_kernel()` consult at startup.
//!
//! Before anything is measured, every supported variant must prove itself
//! bitwise-equal to the scalar emulator on an awkward-shape probe: the
//! tuner refuses to persist a winner from a table that is not
//! parity-clean.
//!
//! Gates:
//! * `--check` — fail unless every supported variant passed parity and
//!   the persisted winner's throughput is at least the measured heuristic
//!   baseline (the default kernel under the autotune blocking probe).
//! * `--check-reload` — no sweep at all: assert that a *previous* tune run
//!   persisted a record this process loads back (`TuneSource::Persisted`
//!   for both blocking and kernel). Run it as a second process after
//!   `tune --check` to pin the load-instead-of-resweep contract.
//!
//! Usage: `cargo run --release -p conflux-bench --bin tune --
//! [--quick] [--check] [--check-reload] [--out PATH]`

use std::fmt::Write as _;

use denselin::gemm::{
    default_isa_kernel, gemm_blocked_with, gemm_emulated, microkernels,
    selected_kernel_with_source, GemmBlocking,
};
use denselin::matrix::Matrix;
use denselin::tune::{
    best_point, host_key, measure_gflops, sweep, tuning_file_path, SweepConfig, SweepPoint,
    TuneSource, TuningFile, TuningRecord,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let check_reload = args.iter().any(|a| a == "--check-reload");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_tuning.json", env!("CARGO_MANIFEST_DIR")));

    if check_reload {
        run_reload_check();
        return;
    }

    println!("# tune: host key {}", host_key());

    // ---- parity gate: no winner is persisted from an unproven table ----
    let parity = parity_results();
    for (name, status) in &parity {
        println!("# parity {name:>14}: {status}");
    }
    let parity_clean = parity
        .iter()
        .all(|(_, s)| *s == "bitwise-ok" || *s == "skipped (unsupported)");

    // ---- the sweep -----------------------------------------------------
    let cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    println!(
        "# tune: sweeping {} variant(s) x {} blocking(s) x {:?} threads at n={} ({} warmup, {} reps)",
        microkernels().iter().filter(|k| k.supported()).count(),
        cfg.blockings.len(),
        cfg.threads,
        cfg.n,
        cfg.warmup,
        cfg.reps
    );
    let mut points = sweep(&cfg);
    for p in &points {
        println!(
            "{:>14}  mc={:<3} kc={:<3} nc={:<3} threads={} {:>8.2} GFLOP/s",
            p.kernel, p.blocking.mc, p.blocking.kc, p.blocking.nc, p.threads, p.gflops
        );
    }

    // ---- heuristic baseline the winner must beat -----------------------
    // The exact configuration a cold process with no tuning file runs:
    // the fastest-ISA default kernel under the autotune blocking probe,
    // measured with the same discipline at each sweep thread count.
    let base_krn = default_isa_kernel();
    let base_blk = GemmBlocking::autotuned_heuristic();
    let heuristic = cfg
        .threads
        .iter()
        .map(|&t| SweepPoint {
            kernel: base_krn.name,
            blocking: base_blk,
            threads: t,
            gflops: measure_gflops(cfg.n, cfg.warmup, cfg.reps, base_blk, base_krn, t),
        })
        .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
        .expect("sweep thread list is never empty");
    println!(
        "# heuristic baseline: {} mc={} kc={} nc={} threads={} {:.2} GFLOP/s",
        heuristic.kernel,
        heuristic.blocking.mc,
        heuristic.blocking.kc,
        heuristic.blocking.nc,
        heuristic.threads,
        heuristic.gflops
    );
    // The baseline joins the candidate set, so the winner dominates it by
    // construction and the >= heuristic gate can only trip on a logic bug.
    points.push(heuristic.clone());

    let winner = best_point(&points).expect("non-empty sweep").clone();
    println!(
        "# winner: {} mc={} kc={} nc={} threads={} {:.2} GFLOP/s",
        winner.kernel,
        winner.blocking.mc,
        winner.blocking.kc,
        winner.blocking.nc,
        winner.threads,
        winner.gflops
    );

    // ---- persist the winner to the per-host tuning file ----------------
    let persisted_to = match tuning_file_path() {
        None => {
            eprintln!("# tune: no tuning file location (set DENSELIN_TUNING_FILE or HOME); not persisting");
            None
        }
        Some(path) => {
            // Absent or corrupt file: start fresh and rewrite it.
            let mut file = TuningFile::load(&path).unwrap_or_default();
            file.upsert(TuningRecord {
                host: host_key().to_string(),
                kernel: winner.kernel.to_string(),
                blocking: winner.blocking,
                threads: winner.threads,
                gflops: winner.gflops,
            });
            match file.store(&path) {
                Ok(()) => {
                    println!("# persisted winner to {}", path.display());
                    Some(path)
                }
                Err(e) => {
                    eprintln!("# tune: could not persist ({e})");
                    None
                }
            }
        }
    };

    // ---- BENCH_tuning.json: the full search surface --------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_tuning/v1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"host\": \"{}\",", host_key());
    let _ = writeln!(json, "  \"n\": {},", cfg.n);
    let _ = writeln!(json, "  \"warmup\": {},", cfg.warmup);
    let _ = writeln!(json, "  \"reps\": {},", cfg.reps);
    let _ = writeln!(json, "  \"parity_clean\": {parity_clean},");
    json.push_str("  \"parity\": [\n");
    for (i, (name, status)) in parity.iter().enumerate() {
        let comma = if i + 1 < parity.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{name}\", \"status\": \"{status}\" }}{comma}"
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"heuristic\": {},", point_json(&heuristic));
    let _ = writeln!(json, "  \"winner\": {},", point_json(&winner));
    let _ = writeln!(
        json,
        "  \"winner_vs_heuristic\": {:.3},",
        winner.gflops / heuristic.gflops
    );
    let _ = writeln!(
        json,
        "  \"persisted_to\": {},",
        persisted_to
            .as_ref()
            .map_or("null".to_string(), |p| format!("\"{}\"", p.display()))
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", point_json(p));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_tuning.json");
    println!("# wrote {out_path}");

    if check {
        if !parity_clean {
            eprintln!("# check FAILED: a supported variant diverges from the emulator");
            std::process::exit(1);
        }
        println!("# check OK: every supported variant is parity-clean");
        if winner.gflops < heuristic.gflops {
            eprintln!(
                "# check FAILED: persisted winner {:.2} GFLOP/s below heuristic {:.2}",
                winner.gflops, heuristic.gflops
            );
            std::process::exit(1);
        }
        println!(
            "# check OK: winner {:.2} GFLOP/s >= heuristic {:.2} ({:.2}x)",
            winner.gflops,
            heuristic.gflops,
            winner.gflops / heuristic.gflops
        );
        if persisted_to.is_none() {
            eprintln!("# check FAILED: winner was not persisted");
            std::process::exit(1);
        }
    }
}

/// `--check-reload`: this process must load a previously persisted record
/// instead of re-sweeping or re-probing.
fn run_reload_check() {
    let (blk, bsrc) = GemmBlocking::tuned_with_source();
    let (krn, ksrc) = selected_kernel_with_source();
    println!(
        "# reload: blocking mc={} kc={} nc={} (source: {}), kernel {} (source: {})",
        blk.mc,
        blk.kc,
        blk.nc,
        bsrc.as_str(),
        krn.name,
        ksrc.as_str()
    );
    if bsrc != TuneSource::Persisted || ksrc != TuneSource::Persisted {
        eprintln!(
            "# check-reload FAILED: expected both selections to come from the \
             persisted tuning file (run `tune` first, and leave \
             DENSELIN_GEMM_BLOCK/DENSELIN_GEMM_KERNEL unset)"
        );
        std::process::exit(1);
    }
    println!("# check-reload OK: persisted record loaded; no re-sweep, no re-probe");
}

/// Bitwise parity status of every registered variant against the scalar
/// emulator, on shapes that exercise full and fringe tiles of every
/// registered (mr, nr).
fn parity_results() -> Vec<(&'static str, &'static str)> {
    let mut rng = StdRng::seed_from_u64(0x7E5E);
    let shapes = [
        (17usize, 23usize, 9usize),
        (8, 16, 4),
        (5, 5, 5),
        (24, 12, 31),
    ];
    let blk = GemmBlocking {
        mc: 16,
        kc: 7,
        nc: 24,
    };
    microkernels()
        .iter()
        .map(|krn| {
            if !krn.supported() {
                return (krn.name, "skipped (unsupported)");
            }
            for &(m, n, k) in &shapes {
                let a = Matrix::random(&mut rng, m, k);
                let b = Matrix::random(&mut rng, k, n);
                let c0 = Matrix::random(&mut rng, m, n);
                let mut c = c0.clone();
                gemm_blocked_with(&mut c, -1.5, &a, &b, 0.25, blk, krn);
                let mut e = c0;
                gemm_emulated(&mut e, -1.5, &a, &b, 0.25, blk.kc, krn.fused);
                if c.as_slice() != e.as_slice() {
                    return (krn.name, "DIVERGED");
                }
            }
            (krn.name, "bitwise-ok")
        })
        .collect()
}

fn point_json(p: &SweepPoint) -> String {
    format!(
        "{{ \"kernel\": \"{}\", \"mc\": {}, \"kc\": {}, \"nc\": {}, \"threads\": {}, \"gflops\": {:.3} }}",
        p.kernel, p.blocking.mc, p.blocking.kc, p.blocking.nc, p.threads, p.gflops
    )
}
