//! Reproduces **Figure 7**: COnfLUX's communication reduction vs the
//! second-best implementation — measured for P ≤ 1024, model-predicted up
//! to P = 262144 (the paper's exascale extrapolation, including the Summit
//! full-scale prediction of ~2.1x).
//!
//! Run with `cargo run --release --bin fig7`.

use baselines::models;
use conflux_bench::experiments::{measure_all, Implementation};

fn main() {
    println!("# Fig. 7 reproduction: communication reduction of COnfLUX vs second-best");
    println!();
    println!("## measured (simulated) points");
    println!(
        "{:>8} {:>8} | {:>10} {:>12}",
        "N", "P", "reduction", "second-best"
    );
    for n in [4096usize, 8192, 16384] {
        for p in [16usize, 64, 256, 1024] {
            let ms = measure_all(n, p);
            let of = |imp: Implementation| {
                ms.iter()
                    .find(|m| m.implementation == imp)
                    .unwrap()
                    .total_elements as f64
            };
            let conflux = of(Implementation::Conflux);
            let (second_name, second) = [
                ("LibSci", of(Implementation::LibSci)),
                ("SLATE", of(Implementation::Slate)),
                ("CANDMC", of(Implementation::Candmc)),
            ]
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
            println!(
                "{:>8} {:>8} | {:>9.2}x {:>12}",
                n,
                p,
                second / conflux,
                second_name
            );
        }
    }

    println!();
    println!("## model-predicted points (up to P = 262144)");
    println!(
        "{:>8} {:>8} | {:>10} {:>12}",
        "N", "P", "reduction", "second-best"
    );
    for n in [16384.0_f64, 65536.0] {
        let mut p = 1024.0_f64;
        while p <= 262144.0 {
            let m = models::fig6_memory(n, p);
            let (l, s, c, x) = models::all_models_per_rank(n, p, m);
            let (second_name, second) = [("LibSci", l), ("SLATE", s), ("CANDMC", c)]
                .into_iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            println!(
                "{:>8} {:>8} | {:>9.2}x {:>12}",
                n,
                p,
                second / x,
                second_name
            );
            p *= 4.0;
        }
    }

    // Summit-scale headline: the paper predicts 2.1x vs SLATE at a
    // full-machine run. We model the HPL-class problem (N = 16,473,600,
    // the paper's Section 8 reference size), P = 262144 ranks, and
    // *physical* per-rank memory (512 GB/node over 6 ranks ~ 85 GB ~
    // 1.06e10 f64 elements) — at this scale memory, not P^(1/3), caps the
    // replication, so the fig6 memory formula does not apply.
    let n = 16_473_600.0_f64;
    let p = 262_144.0_f64;
    let m = 1.06e10_f64;
    let (l, s, _c, x) = models::all_models_per_rank(n, p, m);
    let second = l.min(s);
    println!();
    println!("## Summit-scale prediction (N = {n:.0}, P = {p:.0}, M = {m:.1e} elems/rank):");
    println!(
        "## COnfLUX is predicted to communicate {:.1}x less than the 2D libraries",
        second / x
    );
    println!("#  (paper: expected 2.1x less than SLATE on a full-scale Summit run;");
    println!("#   the exact factor depends on the assumed per-rank memory)");
}
