//! `perfsmoke` — fast GFLOP/s smoke test of the local compute substrate.
//!
//! Measures the packed register-blocked GEMM against the scalar reference
//! path, the tile-queue parallel GEMM, blocked TRSM, and blocked LU, then
//! writes `BENCH_kernels.json` at the repo root. This file is the perf
//! trajectory future PRs are held against (CI uploads it as an artifact and
//! `--check` turns a packed-slower-than-reference regression into a red
//! build).
//!
//! Usage: `cargo run --release -p conflux-bench --bin perfsmoke -- [--quick]
//! [--check] [--out PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use denselin::gemm::{auto_threads, gemm, gemm_parallel, gemm_reference, GemmBlocking};
use denselin::lu::lu_blocked;
use denselin::matrix::Matrix;
use denselin::trsm::trsm_lower_left;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::trace::RankTracer;

/// One measured kernel configuration.
struct Entry {
    kernel: &'static str,
    n: usize,
    threads: usize,
    seconds: f64,
    gflops: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_kernels.json", env!("CARGO_MANIFEST_DIR")));

    let reps = if quick { 2 } else { 3 };
    let gemm_sizes: &[usize] = if quick {
        &[256, 512]
    } else {
        &[256, 512, 1024]
    };
    let threads = auto_threads();
    let blk = GemmBlocking::tuned();
    println!(
        "# perfsmoke: blocking mc={} kc={} nc={}, {threads} thread(s)",
        blk.mc, blk.kc, blk.nc
    );

    let mut rng = StdRng::seed_from_u64(4242);
    let mut entries: Vec<Entry> = Vec::new();

    // ---- GEMM: reference scalar path vs packed vs tile-queue parallel ----
    for &n in gemm_sizes {
        let a = Matrix::random(&mut rng, n, n);
        let b = Matrix::random(&mut rng, n, n);
        let flops = 2.0 * (n as f64).powi(3);

        let mut c = Matrix::zeros(n, n);
        let t = best_of(reps, || gemm_reference(&mut c, 1.0, &a, &b, 0.0));
        push(&mut entries, "gemm_reference", n, 1, t, flops);

        let t = best_of(reps, || gemm(&mut c, 1.0, &a, &b, 0.0));
        push(&mut entries, "gemm_packed", n, 1, t, flops);

        if threads > 1 {
            let t = best_of(reps, || gemm_parallel(&mut c, 1.0, &a, &b, 0.0, threads));
            push(&mut entries, "gemm_parallel", n, threads, t, flops);
        }
    }

    // ---- disabled tracer overhead on the packed GEMM driver ----
    // every hot path in the simulator calls `begin()`/`push_*` on a
    // possibly-noop tracer; the disabled branch must cost nothing
    {
        let n = 512;
        let a = Matrix::random(&mut rng, n, n);
        let b = Matrix::random(&mut rng, n, n);
        let mut c = Matrix::zeros(n, n);
        let flops = 2.0 * (n as f64).powi(3);
        let reps = reps.max(4);
        let mut tracer = RankTracer::noop();

        // interleave the two variants so frequency/cache drift hits both
        gemm(&mut c, 1.0, &a, &b, 0.0); // warm-up
        let mut t_bare = f64::INFINITY;
        let mut t_traced = f64::INFINITY;
        for _ in 0..reps {
            t_bare = t_bare.min(best_of(1, || gemm(&mut c, 1.0, &a, &b, 0.0)));
            t_traced = t_traced.min(best_of(1, || {
                let t0 = tracer.begin();
                gemm(&mut c, 1.0, &a, &b, 0.0);
                tracer.push_compute("perfsmoke", "gemm", t0);
            }));
        }
        push(&mut entries, "gemm_untraced", n, 1, t_bare, flops);
        push(&mut entries, "gemm_noop_traced", n, 1, t_traced, flops);
    }

    // ---- TRSM (blocked forward substitution, packed rank-k updates) ----
    let trsm_sizes: &[usize] = if quick { &[512] } else { &[512, 1024] };
    for &n in trsm_sizes {
        let l = Matrix::from_fn(n, n, |i, j| {
            if i > j {
                0.1
            } else if i == j {
                2.0
            } else {
                0.0
            }
        });
        let nrhs = 256;
        let b = Matrix::random(&mut rng, n, nrhs);
        let flops = (n as f64) * (n as f64) * nrhs as f64;
        let t = best_of(reps, || {
            let mut x = b.clone();
            trsm_lower_left(&l, &mut x, false);
        });
        push(&mut entries, "trsm_lower_left", n, 1, t, flops);
    }

    // ---- Blocked LU (panel + TRSM + packed trailing update) ----
    let lu_sizes: &[usize] = if quick { &[512] } else { &[512, 1024] };
    for &n in lu_sizes {
        let a = Matrix::random_diagonally_dominant(&mut rng, n);
        let flops = 2.0 / 3.0 * (n as f64).powi(3);
        let t = best_of(reps, || {
            lu_blocked(&a, 64).unwrap();
        });
        push(&mut entries, "lu_blocked64", n, threads, t, flops);
    }

    let speedup_512 = speedup(&entries, "gemm_packed", "gemm_reference", 512);
    // seconds(traced)/seconds(untraced) - 1: the noop tracer's cost
    let noop_overhead = speedup(&entries, "gemm_untraced", "gemm_noop_traced", 512)
        .map(|gflops_ratio| gflops_ratio - 1.0);
    let parallel_scaling = speedup(
        &entries,
        "gemm_parallel",
        "gemm_packed",
        *gemm_sizes.last().unwrap(),
    );

    // ---- render BENCH_kernels.json (hand-rolled: no serde in-tree) ----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_kernels/v1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"blocking\": {{ \"mc\": {}, \"kc\": {}, \"nc\": {} }},",
        blk.mc, blk.kc, blk.nc
    );
    let _ = writeln!(
        json,
        "  \"packed_vs_reference_n512\": {},",
        speedup_512.map_or("null".into(), |s| format!("{s:.3}"))
    );
    let _ = writeln!(
        json,
        "  \"parallel_vs_serial\": {},",
        parallel_scaling.map_or("null".into(), |s| format!("{s:.3}"))
    );
    let _ = writeln!(
        json,
        "  \"noop_tracer_overhead_n512\": {},",
        noop_overhead.map_or("null".into(), |s| format!("{s:.4}"))
    );
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"n\": {}, \"threads\": {}, \"seconds\": {:.6}, \"gflops\": {:.3} }}{comma}",
            e.kernel, e.n, e.threads, e.seconds, e.gflops
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    println!("# wrote {out_path}");

    if check {
        match speedup_512 {
            Some(s) if s >= 1.0 => {
                println!("# check OK: packed gemm is {s:.2}x the reference at N=512");
            }
            Some(s) => {
                eprintln!("# check FAILED: packed gemm only {s:.2}x the reference at N=512");
                std::process::exit(1);
            }
            None => {
                eprintln!("# check FAILED: missing N=512 measurements");
                std::process::exit(1);
            }
        }
        match noop_overhead {
            Some(o) if o < 0.02 => {
                println!(
                    "# check OK: noop tracer overhead {:.2}% at N=512",
                    o * 100.0
                );
            }
            Some(o) => {
                eprintln!(
                    "# check FAILED: noop tracer costs {:.2}% on the packed gemm",
                    o * 100.0
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("# check FAILED: missing noop-tracer measurements");
                std::process::exit(1);
            }
        }
    }
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn push(
    entries: &mut Vec<Entry>,
    kernel: &'static str,
    n: usize,
    threads: usize,
    t: f64,
    flops: f64,
) {
    let gflops = flops / t / 1e9;
    println!("{kernel:>16}  n={n:<5} threads={threads:<2} {t:>9.4} s  {gflops:>8.2} GFLOP/s");
    entries.push(Entry {
        kernel,
        n,
        threads,
        seconds: t,
        gflops,
    });
}

/// GFLOP/s ratio `num/den` at size `n`, if both were measured.
fn speedup(entries: &[Entry], num: &str, den: &str, n: usize) -> Option<f64> {
    let g = |k: &str| {
        entries
            .iter()
            .find(|e| e.kernel == k && e.n == n)
            .map(|e| e.gflops)
    };
    Some(g(num)? / g(den)?)
}
