//! `perfsmoke` — fast GFLOP/s smoke test of the local compute substrate.
//!
//! Measures the packed register-blocked GEMM against the scalar reference
//! path, the tile-queue parallel GEMM, blocked TRSM, blocked LU, and the
//! lookahead-pipelined parallel LU (plus a thread sweep of the parallel
//! kernels), then writes `BENCH_kernels.json` at the repo root. This file
//! is the perf trajectory future PRs are held against (CI uploads it as an
//! artifact, `--check` turns a packed-slower-than-reference regression into
//! a red build, and `--check-scaling` additionally gates the parallel
//! speedups — skipped automatically on single-core machines, where there is
//! no parallelism to measure).
//!
//! The thread count the parallel entries use comes from
//! [`auto_threads`] (override with `DENSELIN_THREADS`).
//!
//! Usage: `cargo run --release -p conflux-bench --bin perfsmoke -- [--quick]
//! [--check] [--check-scaling] [--out PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use denselin::gemm::{auto_threads, gemm, gemm_parallel, gemm_reference, GemmBlocking};
use denselin::lu::lu_blocked;
use denselin::lu_parallel::lu_parallel_with;
use denselin::matrix::Matrix;
use denselin::trsm::trsm_lower_left;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::trace::RankTracer;

/// One measured kernel configuration.
struct Entry {
    kernel: &'static str,
    n: usize,
    threads: usize,
    seconds: f64,
    gflops: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let check_scaling = args.iter().any(|a| a == "--check-scaling");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_kernels.json", env!("CARGO_MANIFEST_DIR")));

    let reps = if quick { 2 } else { 3 };
    let gemm_sizes: &[usize] = if quick {
        &[256, 512]
    } else {
        &[256, 512, 1024]
    };
    let threads = auto_threads();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let blk = GemmBlocking::tuned();
    println!(
        "# perfsmoke: blocking mc={} kc={} nc={}, {threads} thread(s), {cores} core(s)",
        blk.mc, blk.kc, blk.nc
    );

    let mut rng = StdRng::seed_from_u64(4242);
    let mut entries: Vec<Entry> = Vec::new();

    // ---- GEMM: reference scalar path vs packed vs tile-queue parallel ----
    for &n in gemm_sizes {
        let a = Matrix::random(&mut rng, n, n);
        let b = Matrix::random(&mut rng, n, n);
        let flops = 2.0 * (n as f64).powi(3);

        let mut c = Matrix::zeros(n, n);
        let t = best_of(reps, || gemm_reference(&mut c, 1.0, &a, &b, 0.0));
        push(&mut entries, "gemm_reference", n, 1, t, flops);

        let t = best_of(reps, || gemm(&mut c, 1.0, &a, &b, 0.0));
        push(&mut entries, "gemm_packed", n, 1, t, flops);

        if threads > 1 {
            let t = best_of(reps, || gemm_parallel(&mut c, 1.0, &a, &b, 0.0, threads));
            push(&mut entries, "gemm_parallel", n, threads, t, flops);
        }
    }

    // ---- disabled tracer overhead on the packed GEMM driver ----
    // every hot path in the simulator calls `begin()`/`push_*` on a
    // possibly-noop tracer; the disabled branch must cost nothing
    {
        let n = 512;
        let a = Matrix::random(&mut rng, n, n);
        let b = Matrix::random(&mut rng, n, n);
        let mut c = Matrix::zeros(n, n);
        let flops = 2.0 * (n as f64).powi(3);
        let reps = reps.max(4);
        let mut tracer = RankTracer::noop();

        // interleave the two variants so frequency/cache drift hits both
        gemm(&mut c, 1.0, &a, &b, 0.0); // warm-up
        let mut t_bare = f64::INFINITY;
        let mut t_traced = f64::INFINITY;
        for _ in 0..reps {
            t_bare = t_bare.min(best_of(1, || gemm(&mut c, 1.0, &a, &b, 0.0)));
            t_traced = t_traced.min(best_of(1, || {
                let t0 = tracer.begin();
                gemm(&mut c, 1.0, &a, &b, 0.0);
                tracer.push_compute("perfsmoke", "gemm", t0);
            }));
        }
        push(&mut entries, "gemm_untraced", n, 1, t_bare, flops);
        push(&mut entries, "gemm_noop_traced", n, 1, t_traced, flops);
    }

    // ---- TRSM (blocked forward substitution, packed rank-k updates) ----
    let trsm_sizes: &[usize] = if quick { &[512] } else { &[512, 1024] };
    for &n in trsm_sizes {
        let l = Matrix::from_fn(n, n, |i, j| {
            if i > j {
                0.1
            } else if i == j {
                2.0
            } else {
                0.0
            }
        });
        let nrhs = 256;
        let b = Matrix::random(&mut rng, n, nrhs);
        let flops = (n as f64) * (n as f64) * nrhs as f64;
        let t = best_of(reps, || {
            let mut x = b.clone();
            trsm_lower_left(&l, &mut x, false);
        });
        push(&mut entries, "trsm_lower_left", n, 1, t, flops);
    }

    // ---- Blocked LU (panel + TRSM + packed trailing update) and the
    // ---- lookahead-pipelined parallel LU over the same inputs ----
    let lu_sizes: &[usize] = if quick { &[512] } else { &[512, 1024] };
    for &n in lu_sizes {
        let a = Matrix::random_diagonally_dominant(&mut rng, n);
        let flops = 2.0 / 3.0 * (n as f64).powi(3);
        let t = best_of(reps, || {
            lu_blocked(&a, 64).unwrap();
        });
        push(&mut entries, "lu_blocked64", n, 1, t, flops);

        let t = best_of(reps, || {
            lu_parallel_with(&a, 64, threads).unwrap();
        });
        push(&mut entries, "lu_parallel", n, threads, t, flops);
    }

    // ---- thread sweep of the parallel kernels at the largest size ----
    // fills the scaling curve the docs plot; the auto-thread entries above
    // stay first in the list, so the summary ratios below keep finding them
    if threads > 1 {
        let n = *lu_sizes.last().unwrap();
        let a = Matrix::random_diagonally_dominant(&mut rng, n);
        let ga = Matrix::random(&mut rng, n, n);
        let gb = Matrix::random(&mut rng, n, n);
        let mut gc = Matrix::zeros(n, n);
        let lu_flops = 2.0 / 3.0 * (n as f64).powi(3);
        let gemm_flops = 2.0 * (n as f64).powi(3);
        for &t in &[1usize, 2, 4, 8] {
            if t >= threads {
                continue; // the auto-thread point was measured above
            }
            let s = best_of(reps, || gemm_parallel(&mut gc, 1.0, &ga, &gb, 0.0, t));
            push(&mut entries, "gemm_parallel", n, t, s, gemm_flops);
            let s = best_of(reps, || {
                lu_parallel_with(&a, 64, t).unwrap();
            });
            push(&mut entries, "lu_parallel", n, t, s, lu_flops);
        }
    }

    let speedup_512 = speedup(&entries, "gemm_packed", "gemm_reference", 512);
    // seconds(traced)/seconds(untraced) - 1: the noop tracer's cost
    let noop_overhead = speedup(&entries, "gemm_untraced", "gemm_noop_traced", 512)
        .map(|gflops_ratio| gflops_ratio - 1.0);
    let parallel_scaling = speedup(
        &entries,
        "gemm_parallel",
        "gemm_packed",
        *gemm_sizes.last().unwrap(),
    );
    let lu_parallel_scaling = speedup(
        &entries,
        "lu_parallel",
        "lu_blocked64",
        *lu_sizes.last().unwrap(),
    );

    // ---- render BENCH_kernels.json (hand-rolled: no serde in-tree) ----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_kernels/v1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"blocking\": {{ \"mc\": {}, \"kc\": {}, \"nc\": {} }},",
        blk.mc, blk.kc, blk.nc
    );
    let _ = writeln!(
        json,
        "  \"packed_vs_reference_n512\": {},",
        speedup_512.map_or("null".into(), |s| format!("{s:.3}"))
    );
    let _ = writeln!(
        json,
        "  \"parallel_vs_serial\": {},",
        parallel_scaling.map_or("null".into(), |s| format!("{s:.3}"))
    );
    let _ = writeln!(
        json,
        "  \"lu_parallel_vs_serial\": {},",
        lu_parallel_scaling.map_or("null".into(), |s| format!("{s:.3}"))
    );
    let _ = writeln!(
        json,
        "  \"noop_tracer_overhead_n512\": {},",
        noop_overhead.map_or("null".into(), |s| format!("{s:.4}"))
    );
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"n\": {}, \"threads\": {}, \"seconds\": {:.6}, \"gflops\": {:.3} }}{comma}",
            e.kernel, e.n, e.threads, e.seconds, e.gflops
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    println!("# wrote {out_path}");

    if check {
        match speedup_512 {
            Some(s) if s >= 1.0 => {
                println!("# check OK: packed gemm is {s:.2}x the reference at N=512");
            }
            Some(s) => {
                eprintln!("# check FAILED: packed gemm only {s:.2}x the reference at N=512");
                std::process::exit(1);
            }
            None => {
                eprintln!("# check FAILED: missing N=512 measurements");
                std::process::exit(1);
            }
        }
        match noop_overhead {
            Some(o) if o < 0.02 => {
                println!(
                    "# check OK: noop tracer overhead {:.2}% at N=512",
                    o * 100.0
                );
            }
            Some(o) => {
                eprintln!(
                    "# check FAILED: noop tracer costs {:.2}% on the packed gemm",
                    o * 100.0
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("# check FAILED: missing noop-tracer measurements");
                std::process::exit(1);
            }
        }
    }

    if check_scaling {
        // the scaling gates measure real parallelism; on a single-core (or
        // single-thread) run the parallel path degenerates to the serial
        // one plus pool overhead, so there is nothing meaningful to gate
        if cores < 2 || threads < 2 {
            println!(
                "# check-scaling SKIPPED: {cores} core(s) / {threads} thread(s) \
                 visible; parallel speedup gates need at least 2 of each"
            );
            return;
        }
        let lu_n = *lu_sizes.last().unwrap();
        // the LU pipeline's panel stays on one worker, so its speedup trails
        // gemm's: demand the issue's 2x only once 4 workers are available,
        // and a lookahead-beats-serial margin on a 2-thread runner
        let lu_floor = if threads >= 4 { 2.0 } else { 1.2 };
        match parallel_scaling {
            Some(s) if s >= 1.5 => {
                println!("# check-scaling OK: parallel gemm is {s:.2}x the packed serial path");
            }
            Some(s) => {
                eprintln!(
                    "# check-scaling FAILED: parallel gemm only {s:.2}x serial \
                     on {threads} threads (need >= 1.5)"
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("# check-scaling FAILED: no parallel gemm measurement");
                std::process::exit(1);
            }
        }
        match lu_parallel_scaling {
            Some(s) if s >= lu_floor => {
                println!("# check-scaling OK: lookahead LU is {s:.2}x lu_blocked64 at N={lu_n}");
            }
            Some(s) => {
                eprintln!(
                    "# check-scaling FAILED: lookahead LU only {s:.2}x lu_blocked64 \
                     at N={lu_n} on {threads} threads (need >= {lu_floor})"
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("# check-scaling FAILED: no lu_parallel measurement");
                std::process::exit(1);
            }
        }
    }
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn push(
    entries: &mut Vec<Entry>,
    kernel: &'static str,
    n: usize,
    threads: usize,
    t: f64,
    flops: f64,
) {
    let gflops = flops / t / 1e9;
    println!("{kernel:>16}  n={n:<5} threads={threads:<2} {t:>9.4} s  {gflops:>8.2} GFLOP/s");
    entries.push(Entry {
        kernel,
        n,
        threads,
        seconds: t,
        gflops,
    });
}

/// GFLOP/s ratio `num/den` at size `n`, if both were measured.
fn speedup(entries: &[Entry], num: &str, den: &str, n: usize) -> Option<f64> {
    let g = |k: &str| {
        entries
            .iter()
            .find(|e| e.kernel == k && e.n == n)
            .map(|e| e.gflops)
    };
    Some(g(num)? / g(den)?)
}
