//! Sweep machinery shared by the table/figure binaries and benches.

use baselines::lu2d::{factorize_2d, Lu2dConfig, Variant};
use baselines::{factorize_candmc, CandmcConfig};
use conflux::grid::choose_grid;
use conflux::{factorize, ConfluxConfig, Mode};
use simnet::stats::ELEMENT_BYTES;

/// The four measured implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Implementation {
    /// Cray LibSci-style 2D ScaLAPACK.
    LibSci,
    /// SLATE-style 2D.
    Slate,
    /// CANDMC-style 2.5D.
    Candmc,
    /// COnfLUX.
    Conflux,
}

impl Implementation {
    /// All four, in Table 2 column order.
    pub const ALL: [Implementation; 4] = [
        Implementation::LibSci,
        Implementation::Slate,
        Implementation::Candmc,
        Implementation::Conflux,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Implementation::LibSci => "LibSci",
            Implementation::Slate => "SLATE",
            Implementation::Candmc => "CANDMC",
            Implementation::Conflux => "COnfLUX",
        }
    }
}

/// One simulated data point.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Which implementation.
    pub implementation: Implementation,
    /// Matrix order.
    pub n: usize,
    /// Ranks made available.
    pub p: usize,
    /// Total elements sent across all ranks.
    pub total_elements: u64,
    /// Elements sent by the busiest rank (the Fig. 6 per-node series).
    pub max_per_rank: u64,
    /// Modeled elements per rank (Table 2 models).
    pub model_per_rank: f64,
}

impl Measurement {
    /// Measured total volume in GB (8-byte elements), as Table 2 reports.
    pub fn total_gb(&self) -> f64 {
        self.total_elements as f64 * ELEMENT_BYTES as f64 / 1e9
    }

    /// Modeled total volume in GB.
    pub fn model_total_gb(&self) -> f64 {
        self.model_per_rank * self.p as f64 * ELEMENT_BYTES as f64 / 1e9
    }

    /// Measured mean volume per rank in bytes (Fig. 6's y axis).
    pub fn mean_per_rank_bytes(&self) -> f64 {
        self.total_elements as f64 / self.p as f64 * ELEMENT_BYTES as f64
    }

    /// Prediction accuracy `modeled/measured` in percent, as Table 2's
    /// parenthesised column.
    pub fn prediction_pct(&self) -> f64 {
        100.0 * self.model_total_gb() / self.total_gb().max(1e-300)
    }
}

/// Pick a COnfLUX/CANDMC block size: a divisor of `n` that is at least
/// `c` (feasibility) and near the paper's prescription `v = a·c` for a
/// small constant `a` — large enough for kernel efficiency, small enough
/// that the per-step `A00` broadcast (`P·v·N` elements over the whole run)
/// stays lower-order.
pub fn pick_block_size(n: usize, q: usize, c: usize) -> usize {
    let _ = q;
    let ideal = (4 * c).max(16);
    // largest divisor of n that is <= ideal, but at least c
    let mut best = None;
    for d in 1..=n {
        if n.is_multiple_of(d) && d >= c {
            if d <= ideal {
                best = Some(d);
            } else if best.is_none() {
                best = Some(d);
                break;
            } else {
                break;
            }
        }
    }
    best.expect("n has a divisor >= c")
}

/// Memory per rank in the paper's Fig. 6 regime (`M = N²/P^(2/3)`,
/// enough for `c = P^(1/3)` replication), in elements.
pub fn fig6_memory_elems(n: usize, p: usize) -> usize {
    ((n * n) as f64 / (p as f64).powf(2.0 / 3.0)).ceil() as usize
}

/// Measure one implementation (Phantom mode) at `(n, p)` in the Fig. 6
/// memory regime.
pub fn measure(imp: Implementation, n: usize, p: usize) -> Measurement {
    let m = fig6_memory_elems(n, p);
    match imp {
        Implementation::LibSci | Implementation::Slate => {
            let variant = if imp == Implementation::LibSci {
                Variant::LibSci
            } else {
                Variant::Slate
            };
            let cfg = Lu2dConfig::for_ranks(n, p, variant, Mode::Phantom);
            let run = factorize_2d(&cfg, None);
            let model = baselines::models::libsci_per_rank(n as f64, p as f64);
            Measurement {
                implementation: imp,
                n,
                p,
                total_elements: run.stats.total_sent(),
                max_per_rank: run.stats.max_sent_per_rank(),
                model_per_rank: model,
            }
        }
        Implementation::Candmc => {
            let grid = choose_grid(p, n, m);
            let v = pick_block_size(n, grid.q, grid.c);
            let run = factorize_candmc(&CandmcConfig::phantom(n, v, grid), None);
            let model = baselines::models::candmc_per_rank(
                n as f64,
                grid.active() as f64,
                grid.memory_per_rank(n) as f64,
            );
            Measurement {
                implementation: imp,
                n,
                p,
                total_elements: run.stats.total_sent(),
                max_per_rank: run.stats.max_sent_per_rank(),
                model_per_rank: model,
            }
        }
        Implementation::Conflux => {
            let grid = choose_grid(p, n, m);
            let v = pick_block_size(n, grid.q, grid.c);
            let run = factorize(&ConfluxConfig::phantom(n, v, grid), None);
            // full Lemma 10 model including the lower-order reduction and
            // scatter terms (the paper's modeled column also includes them)
            let model = conflux::model::conflux_volume_per_rank(n, &grid);
            Measurement {
                implementation: imp,
                n,
                p,
                total_elements: run.stats.total_sent(),
                max_per_rank: run.stats.max_sent_per_rank(),
                model_per_rank: model,
            }
        }
    }
}

/// Measure all four implementations at `(n, p)`.
pub fn measure_all(n: usize, p: usize) -> Vec<Measurement> {
    Implementation::ALL
        .iter()
        .map(|&imp| measure(imp, n, p))
        .collect()
}

/// Measure COnfLUX alone (ablation sweeps).
pub fn measure_conflux(n: usize, p: usize) -> Measurement {
    measure(Implementation::Conflux, n, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_divides_and_respects_c() {
        for (n, q, c) in [(4096, 8, 4), (16384, 16, 4), (6400, 4, 2), (512, 4, 4)] {
            let v = pick_block_size(n, q, c);
            assert_eq!(n % v, 0, "n={n} v={v}");
            assert!(v >= c, "n={n} v={v} c={c}");
        }
    }

    #[test]
    fn small_sweep_orders_implementations_correctly() {
        // the paper's headline: COnfLUX communicates least. N must be
        // large enough relative to P that the leading term dominates the
        // lower-order redistribution terms (the paper's smallest config is
        // N = 4096; N = 2048 is already past the crossover at P = 64).
        let ms = measure_all(2048, 64);
        let volume = |imp: Implementation| {
            ms.iter()
                .find(|m| m.implementation == imp)
                .unwrap()
                .total_elements
        };
        assert!(volume(Implementation::Conflux) < volume(Implementation::LibSci));
        assert!(volume(Implementation::Conflux) < volume(Implementation::Slate));
        assert!(volume(Implementation::Conflux) < volume(Implementation::Candmc));
    }

    #[test]
    fn measurement_units() {
        let m = Measurement {
            implementation: Implementation::Conflux,
            n: 10,
            p: 4,
            total_elements: 1_000_000,
            max_per_rank: 300_000,
            model_per_rank: 250_000.0,
        };
        assert!((m.total_gb() - 0.008).abs() < 1e-9);
        assert!((m.mean_per_rank_bytes() - 2_000_000.0).abs() < 1e-6);
        assert!((m.prediction_pct() - 100.0).abs() < 1e-9);
    }
}
