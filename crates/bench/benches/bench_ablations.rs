//! Ablation benches for the design choices DESIGN.md calls out:
//! row masking vs swapping, replication depth `c`, blocking parameter `v`,
//! Processor Grid Optimization on/off, and the broadcast algorithm.
//!
//! Each ablation *also prints* the measured volume difference once, so
//! `cargo bench` output doubles as the ablation record in EXPERIMENTS.md.

use conflux::grid::{choose_grid, LuGrid};
use conflux::{factorize, ConfluxConfig, PivotStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::BcastAlgo;
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn print_ablation_summary() {
    PRINT_ONCE.call_once(|| {
        println!("\n=== ablation volume summary (N=1024, printed once) ===");
        let n = 1024;
        let v = 16;

        // 1. masking vs swapping
        let grid = LuGrid::new(64, 4, 4);
        let mask = factorize(&ConfluxConfig::phantom(n, v, grid), None);
        let mut swap_cfg = ConfluxConfig::phantom(n, v, grid);
        swap_cfg.pivot_strategy = PivotStrategy::Swapping;
        let swap = factorize(&swap_cfg, None);
        println!(
            "pivoting: masking {} vs swapping {} elements ({:.2}x)",
            mask.stats.total_sent(),
            swap.stats.total_sent(),
            swap.stats.total_sent() as f64 / mask.stats.total_sent() as f64
        );

        // 2. replication factor sweep at fixed q
        print!("replication: per-rank volume for c = ");
        for c in [1usize, 2, 4] {
            let grid = LuGrid::new(16 * c, 4, c);
            let run = factorize(&ConfluxConfig::phantom(n, v.max(c), grid), None);
            print!(
                "{c}:{:.0}  ",
                run.stats.total_sent() as f64 / grid.active() as f64
            );
        }
        println!();

        // 3. blocking parameter sweep
        print!("blocking: total volume for v = ");
        let grid = LuGrid::new(64, 4, 4);
        for v in [4usize, 16, 64, 256] {
            let run = factorize(&ConfluxConfig::phantom(n, v, grid), None);
            print!("{v}:{}  ", run.stats.total_sent());
        }
        println!();

        // 4. grid optimization vs greedy full-rank 2.5D grid at awkward P
        let p = 60; // not q^2 c friendly
        let m = ((n * n) as f64 / (p as f64).powf(2.0 / 3.0)) as usize;
        let optimized = choose_grid(p, n, m);
        let greedy = LuGrid::new(p, 7, 1); // use all-but-11 ranks in 2D
        let opt_run = factorize(&ConfluxConfig::phantom(n, 16, optimized), None);
        let greedy_run = factorize(&ConfluxConfig::phantom(n, 16, greedy), None);
        println!(
            "grid opt: optimized [{},{},{}] per-rank {:.0} vs greedy [7,7,1] per-rank {:.0}",
            optimized.q,
            optimized.q,
            optimized.c,
            opt_run.stats.total_sent() as f64 / optimized.active() as f64,
            greedy_run.stats.total_sent() as f64 / greedy.active() as f64,
        );

        // 5. broadcast algorithm: volume identical, root load differs
        let mut flat_cfg = ConfluxConfig::phantom(n, 16, LuGrid::new(64, 4, 4));
        flat_cfg.bcast = BcastAlgo::Flat;
        let flat = factorize(&flat_cfg, None);
        let bin = factorize(&ConfluxConfig::phantom(n, 16, LuGrid::new(64, 4, 4)), None);
        println!(
            "bcast: binomial total {} (max/rank {}) vs flat total {} (max/rank {})",
            bin.stats.total_sent(),
            bin.stats.max_sent_per_rank(),
            flat.stats.total_sent(),
            flat.stats.max_sent_per_rank(),
        );
        println!("=== end ablation summary ===\n");
    });
}

fn bench_pivot_strategy(c: &mut Criterion) {
    print_ablation_summary();
    let mut group = c.benchmark_group("ablation_pivot_strategy");
    group.sample_size(10);
    let n = 1024;
    let grid = LuGrid::new(64, 4, 4);
    for (name, strat) in [
        ("masking", PivotStrategy::Masking),
        ("swapping", PivotStrategy::Swapping),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strat, |bch, &strat| {
            bch.iter(|| {
                let mut cfg = ConfluxConfig::phantom(n, 16, grid);
                cfg.pivot_strategy = strat;
                factorize(black_box(&cfg), None).stats.total_sent()
            })
        });
    }
    group.finish();
}

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_replication");
    group.sample_size(10);
    let n = 1024;
    for cc in [1usize, 2, 4] {
        let grid = LuGrid::new(16 * cc, 4, cc);
        group.bench_with_input(BenchmarkId::new("c", cc), &grid, |bch, &grid| {
            bch.iter(|| {
                factorize(&ConfluxConfig::phantom(n, 16, grid), None)
                    .stats
                    .total_sent()
            })
        });
    }
    group.finish();
}

fn bench_block_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_block_size");
    group.sample_size(10);
    let n = 1024;
    let grid = LuGrid::new(64, 4, 4);
    for v in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("v", v), &v, |bch, &v| {
            bch.iter(|| {
                factorize(&ConfluxConfig::phantom(n, v, grid), None)
                    .stats
                    .total_sent()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pivot_strategy,
    bench_replication,
    bench_block_size
);
criterion_main!(benches);
