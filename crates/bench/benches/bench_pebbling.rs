//! Pebbling machinery benches: greedy Belady scheduling, schedule
//! validation, minimum-dominator max-flow, and the symbolic ψ/ρ solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iobound::{minimize_rho, psi, shapes};
use pebbling::builders::{lu_cdag, mmm_cdag};
use pebbling::game::{execute, greedy_schedule_with_order};
use pebbling::schedule::{lu_right_looking_order, mmm_tiled_order};
use pebbling::{greedy_partition, min_dominator_size};
use std::hint::black_box;

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("pebbling_schedules");
    group.sample_size(10);
    for n in [8usize, 12] {
        let g = mmm_cdag(n);
        let order = mmm_tiled_order(n, 2);
        group.bench_with_input(BenchmarkId::new("mmm_greedy", n), &n, |bch, _| {
            bch.iter(|| greedy_schedule_with_order(black_box(&g), 16, &order))
        });
        let moves = greedy_schedule_with_order(&g, 16, &order);
        group.bench_with_input(BenchmarkId::new("mmm_validate", n), &n, |bch, _| {
            bch.iter(|| execute(black_box(&g), black_box(&moves), 16).unwrap())
        });
    }
    let (g, groups) = lu_cdag(10);
    let order = lu_right_looking_order(&groups);
    group.bench_function("lu10_greedy", |bch| {
        bch.iter(|| greedy_schedule_with_order(black_box(&g), 24, &order))
    });
    group.finish();
}

fn bench_dominators(c: &mut Criterion) {
    let mut group = c.benchmark_group("pebbling_dominators");
    group.sample_size(10);
    for n in [4usize, 6] {
        let (g, _) = lu_cdag(n);
        let compute = g.compute_vertices();
        group.bench_with_input(BenchmarkId::new("lu_min_dominator", n), &n, |bch, _| {
            bch.iter(|| min_dominator_size(black_box(&g), black_box(&compute)))
        });
        group.bench_with_input(BenchmarkId::new("lu_greedy_partition", n), &n, |bch, _| {
            bch.iter(|| greedy_partition(black_box(&g), 12))
        });
    }
    group.finish();
}

fn bench_symbolic(c: &mut Criterion) {
    let mut group = c.benchmark_group("iobound_solvers");
    group.sample_size(10);
    group.bench_function("psi_mmm", |bch| {
        bch.iter(|| psi(black_box(&shapes::mmm()), black_box(3000.0)))
    });
    group.bench_function("minimize_rho_lu_s2", |bch| {
        bch.iter(|| minimize_rho(black_box(&shapes::lu_s2()), black_box(1024.0)))
    });
    group.bench_function("full_lu_bound", |bch| {
        bch.iter(|| iobound::lu_bound(black_box(4096.0), black_box(1024.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_schedules, bench_dominators, bench_symbolic);
criterion_main!(benches);
