//! Fig. 6a bench: strong-scaling volume sweep (reduced N; the paper-scale
//! series comes from the `fig6a` binary).

use conflux_bench::experiments::measure_all;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig6a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_strong_scaling");
    group.sample_size(10);
    let n = 2048usize;
    for p in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bch, &p| {
            bch.iter(|| measure_all(black_box(n), black_box(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6a);
criterion_main!(benches);
