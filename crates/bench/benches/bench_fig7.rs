//! Fig. 7 bench: the reduction-vs-second-best computation, combining
//! simulated points with the model extrapolation (reduced scale; the
//! paper-scale series comes from the `fig7` binary).

use baselines::models;
use conflux_bench::experiments::{measure_all, Implementation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn reduction_vs_second_best(n: usize, p: usize) -> f64 {
    let ms = measure_all(n, p);
    let of = |imp: Implementation| {
        ms.iter()
            .find(|m| m.implementation == imp)
            .unwrap()
            .total_elements as f64
    };
    let second = of(Implementation::LibSci)
        .min(of(Implementation::Slate))
        .min(of(Implementation::Candmc));
    second / of(Implementation::Conflux)
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_reduction");
    group.sample_size(10);
    for (n, p) in [(1024usize, 64usize), (2048, 256)] {
        group.bench_with_input(
            BenchmarkId::new("measured", format!("n{n}_p{p}")),
            &(n, p),
            |bch, &(n, p)| bch.iter(|| reduction_vs_second_best(black_box(n), black_box(p))),
        );
    }
    group.bench_function("model_extrapolation_sweep", |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            let n = 16384.0;
            let mut p = 1024.0;
            while p <= 262144.0 {
                let m = models::fig6_memory(n, p);
                let (l, s, cm, x) = models::all_models_per_rank(n, p, m);
                acc += l.min(s).min(cm) / x;
                p *= 2.0;
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
