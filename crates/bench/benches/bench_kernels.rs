//! Substrate kernel benchmarks: GEMM, TRSM, serial LU, tournament
//! pivoting — the building blocks every simulated implementation runs on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use denselin::gemm::{gemm, gemm_parallel, gemm_reference};
use denselin::lu::{lu_blocked, lu_unblocked};
use denselin::matrix::Matrix;
use denselin::tournament::tournament_pivots;
use denselin::trsm::trsm_lower_left;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    for n in [128usize, 256, 512] {
        let a = Matrix::random(&mut rng, n, n);
        let b = Matrix::random(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = Matrix::zeros(n, n);
                gemm_reference(&mut out, 1.0, black_box(&a), black_box(&b), 0.0);
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = Matrix::zeros(n, n);
                gemm(&mut out, 1.0, black_box(&a), black_box(&b), 0.0);
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("tile_queue4", n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = Matrix::zeros(n, n);
                gemm_parallel(&mut out, 1.0, black_box(&a), black_box(&b), 0.0, 4);
                out
            })
        });
    }
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("serial_lu");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    for n in [128usize, 256] {
        let a = Matrix::random(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::new("unblocked", n), &n, |bch, _| {
            bch.iter(|| lu_unblocked(black_box(&a)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("blocked32", n), &n, |bch, _| {
            bch.iter(|| lu_blocked(black_box(&a), 32).unwrap())
        });
    }
    group.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("trsm");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    for n in [128usize, 256] {
        let l = Matrix::from_fn(n, n, |i, j| {
            if i > j {
                0.1
            } else if i == j {
                2.0
            } else {
                0.0
            }
        });
        let b = Matrix::random(&mut rng, n, 32);
        group.bench_with_input(BenchmarkId::new("lower_left", n), &n, |bch, _| {
            bch.iter(|| {
                let mut x = b.clone();
                trsm_lower_left(black_box(&l), &mut x, false);
                x
            })
        });
    }
    group.finish();
}

fn bench_tournament(c: &mut Criterion) {
    let mut group = c.benchmark_group("tournament_pivoting");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let panel = Matrix::random(&mut rng, 1024, 32);
    for parts in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("parts", parts), &parts, |bch, &parts| {
            bch.iter(|| tournament_pivots(black_box(&panel), 32, parts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_lu, bench_trsm, bench_tournament);
criterion_main!(benches);
