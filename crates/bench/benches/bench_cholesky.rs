//! 2.5D Cholesky benches (the future-work extension): volume measurement
//! at several grids, and the Cholesky-vs-LU comparison.

use conflux::cholesky::{factorize_cholesky, CholeskyConfig};
use conflux::grid::LuGrid;
use conflux::{factorize, ConfluxConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_25d");
    group.sample_size(10);
    let n = 1024;
    for (q, cc) in [(2usize, 2usize), (4, 4)] {
        let grid = LuGrid::new(q * q * cc, q, cc);
        group.bench_with_input(
            BenchmarkId::new("phantom", format!("q{q}_c{cc}")),
            &grid,
            |bch, &grid| {
                bch.iter(|| {
                    factorize_cholesky(&CholeskyConfig::phantom(n, 16, grid), None)
                        .stats
                        .total_sent()
                })
            },
        );
    }
    group.bench_function("vs_lu_volume_ratio", |bch| {
        let grid = LuGrid::new(64, 4, 4);
        bch.iter(|| {
            let chol = factorize_cholesky(&CholeskyConfig::phantom(n, 16, grid), None)
                .stats
                .total_sent();
            let lu = factorize(&ConfluxConfig::phantom(n, 16, grid), None)
                .stats
                .total_sent();
            black_box(chol as f64 / lu as f64)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cholesky);
criterion_main!(benches);
