//! Fig. 6b bench: weak-scaling volume sweep with N = 800·∛P (reduced
//! scale; the paper-scale series comes from the `fig6b` binary).

use conflux_bench::experiments::measure_all;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig6b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_weak_scaling");
    group.sample_size(10);
    for p in [8usize, 64, 216] {
        let n = 800 * (p as f64).cbrt().round() as usize;
        group.bench_with_input(BenchmarkId::from_parameter(p), &(n, p), |bch, &(n, p)| {
            bch.iter(|| measure_all(black_box(n), black_box(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6b);
criterion_main!(benches);
