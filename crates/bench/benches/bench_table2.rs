//! Table 2 bench: times the four-implementation volume measurement at a
//! reduced scale (the full-scale rows are printed by the `table2` binary).

use conflux_bench::experiments::{measure, measure_all, Implementation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for (n, p) in [(1024usize, 64usize), (2048, 64), (2048, 256)] {
        group.bench_with_input(
            BenchmarkId::new("all_impls", format!("n{n}_p{p}")),
            &(n, p),
            |bch, &(n, p)| bch.iter(|| measure_all(black_box(n), black_box(p))),
        );
    }
    for imp in Implementation::ALL {
        group.bench_with_input(BenchmarkId::new("single", imp.name()), &imp, |bch, &imp| {
            bch.iter(|| measure(imp, black_box(1024), black_box(64)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
