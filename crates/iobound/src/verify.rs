//! Cross-validation of the symbolic bounds against executable pebbling.
//!
//! The `pebbling` crate can *run* schedules; this module checks, on small
//! instances, that every valid schedule's measured `Q` dominates the bound
//! the symbolic machinery produces — the soundness property lower bounds
//! must have. (Tightness is checked separately: blocked schedules come
//! within small constant factors.)

use pebbling::builders::{lu_cdag, mmm_cdag};
use pebbling::game::{execute, greedy_schedule_with_order};
use pebbling::schedule::{lu_right_looking_order, mmm_tiled_order};

use crate::kernels::{lu_bound, mmm_bound};

/// Measured I/O of a blocked MMM schedule vs the symbolic bound.
/// Returns `(q_measured, q_bound)`.
pub fn mmm_schedule_vs_bound(n: usize, m: usize, tile: usize) -> (f64, f64) {
    let g = mmm_cdag(n);
    let order = mmm_tiled_order(n, tile);
    let moves = greedy_schedule_with_order(&g, m, &order);
    let stats = execute(&g, &moves, m).expect("schedule invalid");
    assert!(stats.complete);
    (stats.q() as f64, mmm_bound(n as f64, m as f64))
}

/// Measured I/O of the right-looking LU schedule vs the symbolic bound.
/// Returns `(q_measured, q_bound)`.
pub fn lu_schedule_vs_bound(n: usize, m: usize) -> (f64, f64) {
    let (g, groups) = lu_cdag(n);
    let order = lu_right_looking_order(&groups);
    let moves = greedy_schedule_with_order(&g, m, &order);
    let stats = execute(&g, &moves, m).expect("schedule invalid");
    assert!(stats.complete);
    (stats.q() as f64, lu_bound(n as f64, m as f64).q_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmm_bound_is_sound_on_small_instances() {
        for (n, m, t) in [(4, 8, 2), (6, 12, 2), (8, 14, 2), (8, 27, 3)] {
            let (q, bound) = mmm_schedule_vs_bound(n, m, t);
            assert!(
                q >= bound,
                "schedule beat the lower bound! n={n} m={m} q={q} bound={bound}"
            );
        }
    }

    #[test]
    fn mmm_bound_is_reasonably_tight() {
        // a well-tiled schedule should be within a modest constant factor
        let (q, bound) = mmm_schedule_vs_bound(8, 14, 2);
        assert!(q <= 8.0 * bound, "bound too loose: q={q} bound={bound}");
    }

    #[test]
    fn lu_bound_is_sound_on_small_instances() {
        for (n, m) in [(4, 10), (6, 14), (8, 20), (10, 30)] {
            let (q, bound) = lu_schedule_vs_bound(n, m);
            assert!(
                q >= bound,
                "schedule beat the lower bound! n={n} m={m} q={q} bound={bound}"
            );
        }
    }

    #[test]
    fn lu_bound_is_reasonably_tight() {
        let (q, bound) = lu_schedule_vs_bound(8, 20);
        assert!(q <= 12.0 * bound, "bound too loose: q={q} bound={bound}");
    }
}
