//! End-to-end lower-bound derivations for the kernels the paper discusses:
//! LU factorization (Section 6, the headline result), matrix multiplication,
//! and Cholesky factorization, with both the machinery-derived numeric
//! values and the paper's closed forms.

use crate::program::{shapes, StatementShape};
use crate::reuse::{analyze, apply_output_reuse, StatementInstance};
use crate::rho::{q_lower_bound, statement_rho};

/// The complete LU lower-bound derivation of Section 6.
#[derive(Clone, Copy, Debug)]
pub struct LuBound {
    /// `ρ_S1` (= 1 via Lemma 6).
    pub rho_s1: f64,
    /// `ρ_S2` (= √M/2).
    pub rho_s2: f64,
    /// `Q_S1 ≥ N(N−1)/2`.
    pub q_s1: f64,
    /// `Q_S2 ≥ (2N³−6N²+4N)/(3√M)`.
    pub q_s2: f64,
    /// Sequential total `Q_LU ≥ Q_S1 + Q_S2`.
    pub q_total: f64,
}

impl LuBound {
    /// Lemma 9: per-processor parallel bound `Q_LU / P`.
    pub fn parallel(&self, p: usize) -> f64 {
        self.q_total / p as f64
    }

    /// The leading-order closed form `2N³/(3P√M)` the paper headlines.
    pub fn leading_term(n: f64, m: f64, p: usize) -> f64 {
        2.0 * n * n * n / (3.0 * p as f64 * m.sqrt())
    }
}

/// Number of S1 vertices: `Σ_{k=1..N}(N−k) = N(N−1)/2`.
pub fn lu_s1_domain(n: f64) -> f64 {
    n * (n - 1.0) / 2.0
}

/// Number of S2 vertices: `Σ_{k=1..N}(N−k)² = N³/3 − N²/2 + N/6`.
pub fn lu_s2_domain(n: f64) -> f64 {
    (n - 1.0) * n * (2.0 * n - 1.0) / 6.0
}

/// Derive the full LU lower bound with the crate's machinery (Section 6).
///
/// The S1 → S2 output reuse is applied via Lemma 8, which — because
/// `ρ_S1 = 1` — leaves S2's access sizes unchanged, exactly as the paper
/// notes.
///
/// ```
/// let b = iobound::lu_bound(4096.0, 1024.0);
/// // the paper's leading term 2N³/(3√M), plus lower-order terms
/// let leading = 2.0 * 4096.0_f64.powi(3) / (3.0 * 1024.0_f64.sqrt());
/// assert!(b.q_total >= leading);
/// // Lemma 9: per-rank parallel bound
/// assert!((b.parallel(64) - b.q_total / 64.0).abs() < 1e-9);
/// ```
pub fn lu_bound(n: f64, m: f64) -> LuBound {
    // S1: rho bounded by Lemma 6 with u = 1 (each A[i,k] input has
    // out-degree one within the statement).
    let rho_s1 = statement_rho(&shapes::lu_s1(), m, 1);
    let q_s1 = q_lower_bound(lu_s1_domain(n), rho_s1);

    // S2 with the output-reuse adjustment from S1 (neutral since rho_S1=1).
    let s2_shape = apply_output_reuse(&shapes::lu_s2(), "A_ik", rho_s1);
    let rho_s2 = statement_rho(&s2_shape, m, 0);
    let q_s2 = q_lower_bound(lu_s2_domain(n), rho_s2);

    LuBound {
        rho_s1,
        rho_s2,
        q_s1,
        q_s2,
        q_total: q_s1 + q_s2,
    }
}

/// The paper's closed-form sequential LU bound
/// `(2N³ − 6N² + 4N)/(3√M) + N(N−1)/2`.
pub fn lu_bound_closed_form(n: f64, m: f64) -> f64 {
    (2.0 * n * n * n - 6.0 * n * n + 4.0 * n).max(0.0) / (3.0 * m.sqrt()) + n * (n - 1.0) / 2.0
}

/// Matrix-multiplication bound: `Q ≥ 2N³/√M` (and `/P` in parallel).
pub fn mmm_bound(n: f64, m: f64) -> f64 {
    let rho = statement_rho(&shapes::mmm(), m, 0);
    q_lower_bound(n * n * n, rho)
}

/// Cholesky factorization bound derived from its trailing update
/// (`A[i,j] -= A[i,k]·A[j,k]`, domain `Σ_k (N−k)²/2 ≈ N³/6`):
/// `Q ≳ N³/(3√M)`.
pub fn cholesky_bound(n: f64, m: f64) -> f64 {
    let rho = statement_rho(&shapes::cholesky_s3(), m, 0);
    // i > j > k triangle: half of the LU S2 domain
    let domain = lu_s2_domain(n) / 2.0;
    q_lower_bound(domain, rho)
}

/// Householder-QR bound (extension; Ballard et al. asymptotics): the
/// trailing update `A[i,j] -= v[i]·w[j]` per reflector is MMM-shaped with
/// domain `Σ_k (N−k)² ≈ N³/3`, and the `w = Aᵀv` products contribute the
/// same domain again: `Q ≳ 4N³/(3√M)`.
pub fn qr_bound(n: f64, m: f64) -> f64 {
    let rho = statement_rho(&shapes::mmm(), m, 0);
    // two MMM-shaped sweeps over the triangular domain
    q_lower_bound(2.0 * lu_s2_domain(n), rho)
}

/// Tensor-contraction bound for `C[i,j] += A[i,l,m]·B[l,m,j]` with
/// extents `(n_i, n_j, n_l·n_m = n_lm)`: same intensity as MMM
/// (`ρ = √M/2`), so `Q ≥ 2·n_i·n_j·n_lm/√M`.
pub fn tensor_contraction_bound(n_i: f64, n_j: f64, n_lm: f64, m: f64) -> f64 {
    let rho = statement_rho(&shapes::tensor_contraction_4d(), m, 0);
    q_lower_bound(n_i * n_j * n_lm, rho)
}

/// The §4.1 two-statement fusion example: returns `(Q_S, Q_T, Reuse(B),
/// Q_tot)`, expected `(N³/M, N³/M, N³/M, N³/M)`.
pub fn sec41_example(n: f64, m: f64) -> (f64, f64, f64, f64) {
    let s = analyze(
        &StatementInstance {
            shape: shapes::sec41_s(),
            domain_size: n * n * n,
            outdegree_one_u: 0,
        },
        m,
    );
    let t = analyze(
        &StatementInstance {
            shape: shapes::sec41_t(),
            domain_size: n * n * n,
            outdegree_one_u: 0,
        },
        m,
    );
    let reuse = crate::reuse::input_reuse(&s, &t, "B");
    let q_tot = (s.q + t.q - reuse).max(0.0);
    (s.q, t.q, reuse, q_tot)
}

/// The §4.2 modified-MMM example (producer statement computes `A` from
/// scratch with no inputs, so `ρ_S = ∞`): returns `(Q_T_alone, Q_combined)`,
/// expected `(2N³/√M, N³/M)`.
pub fn sec42_example(n: f64, m: f64) -> (f64, f64) {
    let q_alone = mmm_bound(n, m);
    let weakened: StatementShape = apply_output_reuse(&shapes::mmm(), "A", f64::INFINITY);
    let rho = statement_rho(&weakened, m, 0);
    let q_combined = q_lower_bound(n * n * n, rho);
    (q_alone, q_combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, rel: f64) {
        assert!((a - b).abs() <= rel * b.abs().max(1e-12), "{a} !~ {b}");
    }

    #[test]
    fn lu_domains() {
        assert_eq!(lu_s1_domain(4.0), 6.0);
        assert_eq!(lu_s2_domain(4.0), 14.0); // 9 + 4 + 1
        assert_eq!(lu_s2_domain(1.0), 0.0);
    }

    #[test]
    fn lu_bound_matches_closed_form() {
        for (n, m) in [(512.0, 256.0), (4096.0, 1024.0), (16384.0, 4096.0)] {
            let b = lu_bound(n, m);
            assert_close(b.rho_s1, 1.0, 1e-9);
            assert_close(b.rho_s2, m.sqrt() / 2.0, 1e-3);
            // closed form uses the same domain polynomials up to rounding
            let cf = lu_bound_closed_form(n, m);
            assert_close(b.q_total, cf, 2e-2);
        }
    }

    #[test]
    fn lu_parallel_bound_leading_term() {
        // For large N the bound approaches 2N^3/(3 P sqrt(M)).
        let (n, m, p) = (16384.0, 1_048_576.0, 1024);
        let b = lu_bound(n, m);
        let lead = LuBound::leading_term(n, m, p);
        let par = b.parallel(p);
        assert!(par >= lead, "machinery bound below leading term");
        assert_close(par, lead + n * (n - 1.0) / (2.0 * p as f64), 5e-2);
    }

    #[test]
    fn mmm_bound_closed_form() {
        let (n, m) = (1024.0, 4096.0);
        assert_close(mmm_bound(n, m), 2.0 * n * n * n / m.sqrt(), 1e-2);
    }

    #[test]
    fn cholesky_is_half_of_lu_s2() {
        let (n, m) = (2048.0, 1024.0);
        let chol = cholesky_bound(n, m);
        let lu_s2_q = q_lower_bound(lu_s2_domain(n), m.sqrt() / 2.0);
        assert_close(chol, lu_s2_q / 2.0, 1e-2);
        // ~ N^3/(3 sqrt(M))
        assert_close(chol, n * n * n / (3.0 * m.sqrt()), 5e-2);
    }

    #[test]
    fn sec41_numbers() {
        let (n, m) = (4096.0, 1024.0);
        let (qs, qt, reuse, q_tot) = sec41_example(n, m);
        let expect = n * n * n / m;
        assert_close(qs, expect, 1e-2);
        assert_close(qt, expect, 1e-2);
        assert_close(reuse, expect, 1e-2);
        assert_close(q_tot, expect, 2e-2);
    }

    #[test]
    fn sec42_numbers() {
        let (n, m) = (2048.0, 1024.0);
        let (alone, combined) = sec42_example(n, m);
        assert_close(alone, 2.0 * n * n * n / m.sqrt(), 1e-2);
        assert_close(combined, n * n * n / m, 1e-2);
        assert!(combined < alone);
    }

    #[test]
    fn qr_bound_shape() {
        let (n, m) = (2048.0, 1024.0);
        assert_close(qr_bound(n, m), 4.0 * n * n * n / (3.0 * m.sqrt()), 5e-2);
        // QR moves more than LU's S2 (two sweeps vs one)
        assert!(qr_bound(n, m) > q_lower_bound(lu_s2_domain(n), m.sqrt() / 2.0));
    }

    #[test]
    fn tensor_contraction_bound_matches_mmm_form() {
        let (ni, nj, nlm, m) = (512.0, 256.0, 1024.0, 4096.0);
        let q = tensor_contraction_bound(ni, nj, nlm, m);
        assert_close(q, 2.0 * ni * nj * nlm / m.sqrt(), 1e-2);
    }

    #[test]
    fn bounds_shrink_with_memory() {
        let n = 4096.0;
        let q1 = lu_bound(n, 256.0).q_total;
        let q2 = lu_bound(n, 4096.0).q_total;
        assert!(q2 < q1);
    }

    #[test]
    fn parallel_bound_divides_by_p() {
        let b = lu_bound(1024.0, 256.0);
        assert_close(b.parallel(16), b.q_total / 16.0, 1e-12);
    }
}
