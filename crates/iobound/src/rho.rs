//! Computational intensity `ρ(X) = ψ(X)/(X − M)` and its minimization
//! (Lemma 2), plus the out-degree-one cap of Lemma 6.

use crate::intensity::{psi, Psi};
use crate::program::StatementShape;

/// Result of minimizing `ρ(X)` over `X > M`.
#[derive(Clone, Copy, Debug)]
pub struct RhoResult {
    /// The minimizing `X_0`.
    pub x0: f64,
    /// `ψ(X_0)`.
    pub psi_x0: f64,
    /// The minimized computational intensity `ρ = ψ(X_0)/(X_0 − M)`.
    pub rho: f64,
}

/// Minimize `ρ(X) = ψ(X)/(X − M)` by golden-section search on `log X`
/// over `X ∈ (M, x_hi]`.
///
/// Returns `None` when ψ is unbounded (ρ = ∞ — a statement with a free
/// iteration variable, like §4.2's input-free statement).
pub fn minimize_rho(shape: &StatementShape, m: f64) -> Option<RhoResult> {
    minimize_rho_upto(shape, m, 1e9 * (m + 2.0))
}

/// [`minimize_rho`] with an explicit upper search limit (statements whose
/// ρ decreases monotonically, like LU-S1, have their infimum at `X → ∞`;
/// the cap makes the search total and the Lemma 6 bound then takes over).
pub fn minimize_rho_upto(shape: &StatementShape, m: f64, x_hi: f64) -> Option<RhoResult> {
    assert!(m >= 0.0);
    let x_lo = shape.min_feasible_x().max(m + 1e-9) + 1e-9;
    if x_hi <= x_lo {
        return None;
    }
    let rho_at = |x: f64| -> Option<f64> {
        match psi(shape, x) {
            Psi::Bounded(s) => Some(s.value / (x - m)),
            Psi::Unbounded => None,
            Psi::Infeasible => Some(f64::INFINITY),
        }
    };
    rho_at(x_lo + 1.0)?; // detect unbounded psi early

    // golden-section on t = ln X
    let (mut a, mut b) = (x_lo.ln(), x_hi.ln());
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let f = |t: f64| rho_at(t.exp()).unwrap_or(f64::INFINITY);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..120 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
        if (b - a).abs() < 1e-12 {
            break;
        }
    }
    let x0 = (0.5 * (a + b)).exp();
    let psi_x0 = psi(shape, x0).value();
    Some(RhoResult {
        x0,
        psi_x0,
        rho: psi_x0 / (x0 - m),
    })
}

/// Full per-statement intensity: the minimized ρ, additionally capped by
/// Lemma 6 when the statement's cDAG has `u ≥ 1` out-degree-one input
/// predecessors per compute vertex (`ρ ≤ 1/u`).
pub fn statement_rho(shape: &StatementShape, m: f64, outdegree_one_u: usize) -> f64 {
    let opt = minimize_rho(shape, m).map_or(f64::INFINITY, |r| r.rho);
    if outdegree_one_u > 0 {
        opt.min(1.0 / outdegree_one_u as f64)
    } else {
        opt
    }
}

/// Lemma 1 / Lemma 2: sequential I/O lower bound `Q ≥ |V| / ρ`.
pub fn q_lower_bound(domain_size: f64, rho: f64) -> f64 {
    if rho.is_infinite() {
        0.0
    } else {
        domain_size / rho
    }
}

/// Lemma 9: parallel I/O lower bound per processor, `Q ≥ |V| / (P·ρ)`.
pub fn q_lower_bound_parallel(domain_size: f64, rho: f64, p: usize) -> f64 {
    q_lower_bound(domain_size, rho) / p as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::shapes;
    use crate::program::StatementShape;

    fn assert_close(a: f64, b: f64, rel: f64) {
        assert!((a - b).abs() <= rel * b.abs().max(1e-12), "{a} !~ {b}");
    }

    #[test]
    fn mmm_rho_is_half_sqrt_m() {
        // X0 = 3M, psi = M^(3/2), rho = sqrt(M)/2
        for m in [48.0, 300.0, 10_000.0] {
            let r = minimize_rho(&shapes::mmm(), m).unwrap();
            assert_close(r.x0, 3.0 * m, 1e-3);
            assert_close(r.rho, m.sqrt() / 2.0, 1e-3);
        }
    }

    #[test]
    fn lu_s2_rho_matches_paper() {
        // Section 6: rho_S2 = sqrt(M)/2
        let m = 1024.0;
        let r = minimize_rho(&shapes::lu_s2(), m).unwrap();
        assert_close(r.rho, m.sqrt() / 2.0, 1e-3);
    }

    #[test]
    fn lu_s1_rho_approaches_one_and_lemma6_caps_it() {
        let m = 64.0;
        // without the cap the infimum (X -> inf) approaches 1 from above
        let r = minimize_rho(&shapes::lu_s1(), m).unwrap();
        assert!(r.rho >= 1.0 && r.rho < 1.01, "rho={}", r.rho);
        // Lemma 6 with u = 1 (A[i,k] has out-degree 1 within S1)
        assert_eq!(statement_rho(&shapes::lu_s1(), m, 1), 1.0);
    }

    #[test]
    fn sec41_statements_rho_is_m() {
        // X0 = 2M, psi = M^2, rho = M
        let m = 256.0;
        let rs = minimize_rho(&shapes::sec41_s(), m).unwrap();
        assert_close(rs.x0, 2.0 * m, 1e-3);
        assert_close(rs.rho, m, 1e-3);
        let rt = minimize_rho(&shapes::sec41_t(), m).unwrap();
        assert_close(rt.rho, m, 1e-3);
    }

    #[test]
    fn unbounded_statement_gives_zero_bound() {
        // statement with a free variable: infinite rho, zero bound
        let s = StatementShape::new("free", 2).with_term("A", &[0]);
        assert!(minimize_rho(&s, 8.0).is_none());
        assert_eq!(statement_rho(&s, 8.0, 0), f64::INFINITY);
        assert_eq!(q_lower_bound(1e9, f64::INFINITY), 0.0);
    }

    #[test]
    fn lemma6_cap_applies_to_unbounded() {
        let s = StatementShape::new("free", 2).with_term("A", &[0]);
        assert_eq!(statement_rho(&s, 8.0, 2), 0.5);
    }

    #[test]
    fn q_bounds_scale() {
        assert_close(q_lower_bound(1000.0, 4.0), 250.0, 1e-12);
        assert_close(q_lower_bound_parallel(1000.0, 4.0, 10), 25.0, 1e-12);
    }

    #[test]
    fn mmm_q_bound_matches_2n3_over_sqrt_m() {
        let (n, m) = (512.0_f64, 4096.0_f64);
        let rho = minimize_rho(&shapes::mmm(), m).unwrap().rho;
        let q = q_lower_bound(n * n * n, rho);
        assert_close(q, 2.0 * n * n * n / m.sqrt(), 1e-2);
    }
}
