//! DAAP statement shapes (Section 2.2).
//!
//! For the lower-bound optimization (Problem 3) the only structure that
//! matters about a statement is: how many iteration variables its loop nest
//! has, and which subset of them addresses each input access. That is what
//! [`StatementShape`] captures; e.g. LU's trailing update
//! `A[i,j] -= A[i,k]*A[k,j]` is three variables and three terms
//! `{i,j}, {i,k}, {k,j}`.

/// One input access `A_j[φ_j(r)]` reduced to its *access dimension*: the set
/// of distinct iteration variables in `φ_j`, plus a coefficient used by the
/// output-reuse rule (Lemma 8 divides an access's contribution by the
/// producer's computational intensity).
#[derive(Clone, Debug, PartialEq)]
pub struct AccessTerm {
    /// Array name (for reuse matching across statements).
    pub array: String,
    /// Indices of the iteration variables appearing in the access function
    /// vector (deduplicated — `A[k,k]` has `vars = [k]`).
    pub vars: Vec<usize>,
    /// Weight of this term in the dominator constraint (1.0 normally;
    /// `1/ρ_producer` after output-reuse adjustment; 0.0 drops the term).
    pub coeff: f64,
}

/// The shape of one DAAP statement.
#[derive(Clone, Debug, PartialEq)]
pub struct StatementShape {
    /// Statement name, for reporting.
    pub name: String,
    /// Number of iteration variables `l` in the loop nest.
    pub num_vars: usize,
    /// The input access terms forming the dominator constraint.
    pub terms: Vec<AccessTerm>,
}

impl StatementShape {
    /// New statement with `num_vars` iteration variables and no terms yet.
    pub fn new(name: impl Into<String>, num_vars: usize) -> Self {
        Self {
            name: name.into(),
            num_vars,
            terms: Vec::new(),
        }
    }

    /// Add an input access on `array` addressed by iteration variables
    /// `vars` (deduplicated automatically).
    ///
    /// # Panics
    /// Panics if any variable index is out of range.
    pub fn with_term(mut self, array: impl Into<String>, vars: &[usize]) -> Self {
        self.push_term(array, vars, 1.0);
        self
    }

    /// Add a term with an explicit coefficient (used by output reuse).
    pub fn with_weighted_term(
        mut self,
        array: impl Into<String>,
        vars: &[usize],
        coeff: f64,
    ) -> Self {
        self.push_term(array, vars, coeff);
        self
    }

    fn push_term(&mut self, array: impl Into<String>, vars: &[usize], coeff: f64) {
        let mut v: Vec<usize> = vars.to_vec();
        v.sort_unstable();
        v.dedup();
        assert!(
            v.iter().all(|&t| t < self.num_vars),
            "access variable index out of range"
        );
        assert!(coeff >= 0.0, "term coefficient must be non-negative");
        self.terms.push(AccessTerm {
            array: array.into(),
            vars: v,
            coeff,
        });
    }

    /// True iff every iteration variable appears in at least one term with
    /// a positive coefficient. When false, the subcomputation volume is
    /// unbounded for any `X` (ψ = ∞, ρ = ∞): some loop dimension incurs no
    /// loads at all.
    pub fn all_vars_constrained(&self) -> bool {
        (0..self.num_vars).all(|t| {
            self.terms
                .iter()
                .any(|term| term.coeff > 0.0 && term.vars.contains(&t))
        })
    }

    /// The term accessing `array`, if present.
    pub fn term(&self, array: &str) -> Option<&AccessTerm> {
        self.terms.iter().find(|t| t.array == array)
    }

    /// Replace the coefficient of the term on `array` (for reuse analysis).
    ///
    /// # Panics
    /// Panics if no term accesses `array`.
    pub fn set_coeff(&mut self, array: &str, coeff: f64) {
        let t = self
            .terms
            .iter_mut()
            .find(|t| t.array == array)
            .unwrap_or_else(|| panic!("statement {} has no access on {array}", self.name));
        t.coeff = coeff;
    }

    /// Sum of coefficients — the constraint value when all `r_t = 1`
    /// (the smallest feasible `X`).
    pub fn min_feasible_x(&self) -> f64 {
        self.terms.iter().map(|t| t.coeff).sum()
    }
}

/// Convenience constructors for the statements analyzed in the paper.
pub mod shapes {
    use super::StatementShape;

    /// Iteration-variable indices used by the canonical 3-nested shapes.
    pub const I: usize = 0;
    /// Second iteration variable.
    pub const J: usize = 1;
    /// Third (reduction) iteration variable.
    pub const K: usize = 2;

    /// Matrix multiplication `C[i,j] += A[i,k] * B[k,j]` (C is both input
    /// and output: three access terms).
    pub fn mmm() -> StatementShape {
        StatementShape::new("MMM", 3)
            .with_term("A", &[I, K])
            .with_term("B", &[K, J])
            .with_term("C", &[I, J])
    }

    /// LU statement S1 `A[i,k] = A[i,k] / A[k,k]` — two variables
    /// (index 0 = k, index 1 = i), access dims `{k,i}` and `{k}`.
    pub fn lu_s1() -> StatementShape {
        StatementShape::new("LU-S1", 2)
            .with_term("A_ik", &[0, 1])
            .with_term("A_kk", &[0])
    }

    /// LU statement S2 `A[i,j] -= A[i,k] * A[k,j]` — same shape as MMM.
    pub fn lu_s2() -> StatementShape {
        StatementShape::new("LU-S2", 3)
            .with_term("A_ij", &[I, J])
            .with_term("A_ik", &[I, K])
            .with_term("A_kj", &[K, J])
    }

    /// Cholesky trailing update `A[i,j] -= A[i,k] * A[j,k]`.
    pub fn cholesky_s3() -> StatementShape {
        StatementShape::new("Cholesky-S3", 3)
            .with_term("A_ij", &[I, J])
            .with_term("A_ik", &[I, K])
            .with_term("A_jk", &[J, K])
    }

    /// Section 4.1 statement S: `D[i,j,k] = A[i,k] * B[k,j]` (3D output,
    /// two 2D inputs; the output is write-only so it adds no term).
    pub fn sec41_s() -> StatementShape {
        StatementShape::new("§4.1-S", 3)
            .with_term("A", &[I, K])
            .with_term("B", &[K, J])
    }

    /// Section 4.1 statement T: `E[i,j,k] = C[i,j] * B[k,j]` — the second
    /// statement of the fusion example, "analogous to S" and sharing the
    /// input array `B` with it.
    pub fn sec41_t() -> StatementShape {
        StatementShape::new("§4.1-T", 3)
            .with_term("C", &[I, J])
            .with_term("B", &[K, J])
    }

    /// A 4-index tensor contraction `C[i,j] += A[i,l,m] * B[l,m,j]`
    /// (a coupled-cluster-style contraction, the "more general tensor
    /// contractions" of Section 2.2): variables `[i, j, l, m]`, with the
    /// fused contraction pair `(l, m)` appearing in both inputs. Its
    /// intensity matches MMM with `K = L·M` — the solver must recover
    /// `ψ(X) = (X/3)^{3/2}` despite the 4-variable domain.
    pub fn tensor_contraction_4d() -> StatementShape {
        StatementShape::new("TC4", 4)
            .with_term("A", &[0, 2, 3])
            .with_term("B", &[2, 3, 1])
            .with_term("C", &[0, 1])
    }

    /// A 1D convolution-like statement `Out[i] += W[k] * In[i]` where the
    /// input access collapses to one variable: the weights array is tiny
    /// and reusable, so the intensity is governed by the out-degree-one
    /// input stream (Lemma 6 with u = 0 here; the optimization alone gives
    /// an unbounded-looking ψ capped by the `In` term).
    pub fn stencil_like() -> StatementShape {
        StatementShape::new("Stencil", 2)
            .with_term("W", &[1])
            .with_term("In", &[0])
    }
}

#[cfg(test)]
mod tests {
    use super::shapes::*;
    use super::*;

    #[test]
    fn term_vars_deduplicated() {
        let s = StatementShape::new("s", 2).with_term("A", &[0, 0, 1, 1]);
        assert_eq!(s.terms[0].vars, vec![0, 1]);
    }

    #[test]
    fn lu_s1_access_dims() {
        let s = lu_s1();
        assert_eq!(s.term("A_ik").unwrap().vars.len(), 2);
        assert_eq!(s.term("A_kk").unwrap().vars, vec![0]);
        assert!(s.all_vars_constrained());
    }

    #[test]
    fn unconstrained_var_detected() {
        // E[i,j,k] = f(A[i,k]): j appears in no input
        let s = StatementShape::new("s", 3).with_term("A", &[0, 2]);
        assert!(!s.all_vars_constrained());
    }

    #[test]
    fn zero_coeff_term_does_not_constrain() {
        let mut s = mmm();
        assert!(s.all_vars_constrained());
        s.set_coeff("A", 0.0);
        // i still appears in C, k still in B — all vars remain covered
        assert!(s.all_vars_constrained());
        s.set_coeff("C", 0.0);
        s.set_coeff("B", 0.0);
        assert!(!s.all_vars_constrained());
    }

    #[test]
    fn min_feasible_x_counts_coeffs() {
        assert_eq!(mmm().min_feasible_x(), 3.0);
        assert_eq!(lu_s1().min_feasible_x(), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_var_panics() {
        let _ = StatementShape::new("s", 2).with_term("A", &[2]);
    }

    #[test]
    #[should_panic(expected = "no access on")]
    fn set_coeff_missing_array_panics() {
        let mut s = mmm();
        s.set_coeff("Z", 0.5);
    }
}
