//! The maximal-subcomputation optimization (Problem 3 of Section 3.2):
//!
//! ```text
//!   ψ(X) = max  Π_t r_t
//!          s.t. Σ_j c_j · Π_{k ∈ vars_j} r_k  ≤  X,     r_t ≥ 1
//! ```
//!
//! In log-space this is a geometric program (concave objective, convex
//! constraint), solved here by bisection on the Lagrange multiplier λ with
//! a coordinate fixed-point inner loop: at optimality each unclamped
//! variable satisfies `r_t = 1/(λ·a_t)` where `a_t = ∂g/∂r_t`. Closed-form
//! KKT solutions of the paper's kernels are recovered to high accuracy
//! (see tests).

use crate::program::StatementShape;

/// Solution of the ψ(X) optimization.
#[derive(Clone, Debug)]
pub struct PsiSolution {
    /// The maximal subcomputation size `ψ(X) = Π r_t`.
    pub value: f64,
    /// Optimal (relaxed, continuous) iteration-range sizes `r_t`.
    pub r: Vec<f64>,
    /// Per-term access sizes `c_j · Π_{k ∈ vars_j} r_k` at the optimum.
    pub term_sizes: Vec<f64>,
}

/// Outcome of [`psi`].
#[derive(Clone, Debug)]
pub enum Psi {
    /// Bounded optimum.
    Bounded(PsiSolution),
    /// Some iteration variable appears in no positively-weighted term, so
    /// arbitrarily large subcomputations satisfy the dominator constraint.
    Unbounded,
    /// `X` is below the smallest feasible constraint value `Σ c_j`.
    Infeasible,
}

impl Psi {
    /// The ψ value, treating `Unbounded` as infinity.
    pub fn value(&self) -> f64 {
        match self {
            Psi::Bounded(s) => s.value,
            Psi::Unbounded => f64::INFINITY,
            Psi::Infeasible => f64::NAN,
        }
    }

    /// Borrow the bounded solution.
    ///
    /// # Panics
    /// Panics if not bounded.
    pub fn unwrap(&self) -> &PsiSolution {
        match self {
            Psi::Bounded(s) => s,
            other => panic!("psi not bounded: {other:?}"),
        }
    }
}

/// Solve the ψ(X) problem for `shape`.
///
/// KKT optima of this geometric program may sit at corners where some
/// `r_t = 1` is active; plain projected fixed-point iteration crawls at
/// such degenerate corners, so instead every *clamp set* (subset of
/// variables fixed at 1) is enumerated — at most `2^l`, and the paper's
/// kernels have `l ≤ 3` — and the interior KKT system of the free
/// variables is solved by λ-bisection with a damped fixed point.
pub fn psi(shape: &StatementShape, x: f64) -> Psi {
    let l = shape.num_vars;
    assert!(
        l <= 12,
        "clamp-set enumeration limited to 12 iteration variables"
    );
    let terms: Vec<(&[usize], f64)> = shape
        .terms
        .iter()
        .filter(|t| t.coeff > 0.0)
        .map(|t| (t.vars.as_slice(), t.coeff))
        .collect();

    if !shape.all_vars_constrained() {
        return Psi::Unbounded;
    }
    let min_x: f64 = terms.iter().map(|(_, c)| c).sum();
    if x < min_x - 1e-12 {
        return Psi::Infeasible;
    }
    if l == 0 {
        return Psi::Bounded(PsiSolution {
            value: 1.0,
            r: vec![],
            term_sizes: vec![],
        });
    }

    let term_value = |r: &[f64], vars: &[usize], c: f64| -> f64 {
        c * vars.iter().map(|&k| r[k]).product::<f64>()
    };
    let constraint =
        |r: &[f64]| -> f64 { terms.iter().map(|(vars, c)| term_value(r, vars, *c)).sum() };

    let mut best: Option<Vec<f64>> = None;
    let mut best_value = 0.0f64;

    for clamp_mask in 0..(1u32 << l) {
        let free: Vec<usize> = (0..l).filter(|t| clamp_mask & (1 << t) == 0).collect();
        let candidate = if free.is_empty() {
            Some(vec![1.0; l])
        } else {
            solve_interior(&terms, l, &free, x, &term_value, &constraint)
        };
        if let Some(r) = candidate {
            // validity: r >= 1 everywhere, constraint satisfied
            if r.iter().all(|&v| v >= 1.0 - 1e-9) && constraint(&r) <= x * (1.0 + 1e-9) {
                let value: f64 = r.iter().product();
                if value > best_value {
                    best_value = value;
                    best = Some(r);
                }
            }
        }
    }

    let r = best.expect("at least the all-clamped point is feasible");
    let value = r.iter().product();
    let term_sizes = terms
        .iter()
        .map(|(vars, c)| term_value(&r, vars, *c))
        .collect();
    Psi::Bounded(PsiSolution {
        value,
        r,
        term_sizes,
    })
}

/// Solve the interior KKT system with the variables outside `free` fixed at
/// 1: bisect on λ so that `g(r) = x`, where for each free `t` the fixed
/// point `r_t = 1/(λ a_t)` holds (`a_t = ∂g/∂r_t`). Returns `None` when the
/// inner iteration fails to converge (inconsistent stationarity — the true
/// optimum lies in another clamp set).
fn solve_interior(
    terms: &[(&[usize], f64)],
    l: usize,
    free: &[usize],
    x: f64,
    term_value: &impl Fn(&[f64], &[usize], f64) -> f64,
    constraint: &impl Fn(&[f64]) -> f64,
) -> Option<Vec<f64>> {
    let partial = |r: &[f64], t: usize| -> f64 {
        terms
            .iter()
            .filter(|(vars, _)| vars.contains(&t))
            .map(|(vars, c)| term_value(r, vars, *c) / r[t])
            .sum()
    };
    // every free variable must appear in some term, else unbounded for this
    // clamp set (can't happen if all_vars_constrained, but guard anyway)
    for &t in free {
        if !terms.iter().any(|(vars, _)| vars.contains(&t)) {
            return None;
        }
    }

    let solve_for_lambda = |lambda: f64| -> Option<Vec<f64>> {
        let mut r = vec![1.0f64; l];
        let mut converged = false;
        for iter in 0..250 {
            let mut delta: f64 = 0.0;
            for &t in free {
                let a = partial(&r, t);
                let raw = 1.0 / (lambda * a);
                // damped multiplicative update for stability
                let next = if iter < 4 {
                    raw
                } else {
                    r[t].powf(0.3) * raw.powf(0.7)
                };
                delta = delta.max(((next - r[t]) / next.max(1e-300)).abs());
                r[t] = next;
            }
            if delta < 1e-13 {
                converged = true;
                break;
            }
        }
        converged.then_some(r)
    };

    // g is decreasing in λ; bisection on log λ
    let (mut lo, mut hi) = (-120.0f64, 120.0f64);
    for _ in 0..90 {
        let mid = 0.5 * (lo + hi);
        match solve_for_lambda(mid.exp()) {
            Some(r) => {
                if constraint(&r) > x {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            None => return None,
        }
    }
    solve_for_lambda(hi.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::shapes;
    use crate::program::StatementShape;

    fn assert_close(a: f64, b: f64, rel: f64) {
        assert!(
            (a - b).abs() <= rel * b.abs().max(1.0),
            "{a} !~ {b} (rel {rel})"
        );
    }

    #[test]
    fn mmm_psi_matches_closed_form() {
        // max r_i r_j r_k s.t. r_i r_k + r_k r_j + r_i r_j <= X
        // => r = sqrt(X/3), psi = (X/3)^(3/2)
        for x in [12.0, 48.0, 300.0, 3e6] {
            let sol = psi(&shapes::mmm(), x);
            assert_close(sol.value(), (x / 3.0_f64).powf(1.5), 1e-6);
            let s = sol.unwrap();
            for rt in &s.r {
                assert_close(*rt, (x / 3.0_f64).sqrt(), 1e-6);
            }
        }
    }

    #[test]
    fn lu_s1_psi_is_x_minus_one() {
        // max r_k r_i s.t. r_k r_i + r_k <= X => r_k = 1, r_i = X - 1
        for x in [4.0, 100.0, 1e5] {
            let sol = psi(&shapes::lu_s1(), x);
            assert_close(sol.value(), x - 1.0, 1e-6);
            let s = sol.unwrap();
            assert_close(s.r[0], 1.0, 1e-6); // k clamped at 1
            assert_close(s.r[1], x - 1.0, 1e-6);
        }
    }

    #[test]
    fn sec41_s_psi_is_x_half_squared() {
        // max r_i r_j r_k s.t. r_i r_k + r_k r_j <= X => r_k=1, r_i=r_j=X/2
        for x in [8.0, 64.0, 1e4] {
            let sol = psi(&shapes::sec41_s(), x);
            assert_close(sol.value(), (x / 2.0) * (x / 2.0), 1e-6);
        }
    }

    #[test]
    fn term_sizes_sum_to_x_when_unclamped() {
        let x = 99.0;
        let sol = psi(&shapes::mmm(), x);
        let total: f64 = sol.unwrap().term_sizes.iter().sum();
        assert_close(total, x, 1e-9);
    }

    #[test]
    fn unbounded_when_var_missing() {
        let s = StatementShape::new("s", 3).with_term("A", &[0, 2]);
        assert!(matches!(psi(&s, 100.0), Psi::Unbounded));
        assert_eq!(psi(&s, 100.0).value(), f64::INFINITY);
    }

    #[test]
    fn infeasible_below_min_x() {
        assert!(matches!(psi(&shapes::mmm(), 2.0), Psi::Infeasible));
    }

    #[test]
    fn feasible_at_min_x_gives_unit_volume() {
        let sol = psi(&shapes::mmm(), 3.0);
        assert_close(sol.value(), 1.0, 1e-6);
    }

    #[test]
    fn weighted_terms_shift_optimum() {
        // Output-reuse: dropping A's coefficient to 0 in MMM leaves
        // r_j(r_i + r_k)... wait: terms B{k,j}, C{i,j}: psi = (X/2)^2.
        let mut s = shapes::mmm();
        s.set_coeff("A", 0.0);
        let x = 50.0;
        let sol = psi(&s, x);
        assert_close(sol.value(), (x / 2.0) * (x / 2.0), 1e-6);
        // halving a coefficient increases psi
        let mut s2 = shapes::mmm();
        s2.set_coeff("A", 0.5);
        assert!(psi(&s2, x).value() > psi(&shapes::mmm(), x).value());
    }

    #[test]
    fn psi_monotone_in_x() {
        let s = shapes::lu_s2();
        let mut prev = 0.0;
        for x in [4.0, 8.0, 20.0, 50.0, 200.0] {
            let v = psi(&s, x).value();
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn tensor_contraction_collapses_to_mmm() {
        // TC4's fused (l, m) pair behaves as one reduction index: the
        // 4-variable solver must still find psi = (X/3)^(3/2)
        for x in [27.0, 300.0, 1e5] {
            let sol = psi(&shapes::tensor_contraction_4d(), x);
            assert_close(sol.value(), (x / 3.0_f64).powf(1.5), 1e-5);
        }
    }

    #[test]
    fn stencil_like_psi() {
        // max r_i r_j s.t. r_i + r_j <= X  =>  (X/2)^2
        let x = 64.0;
        let sol = psi(&shapes::stencil_like(), x);
        assert_close(sol.value(), (x / 2.0) * (x / 2.0), 1e-6);
    }

    #[test]
    fn cholesky_same_psi_as_mmm() {
        // identical term structure up to renaming
        let x = 77.0;
        assert_close(
            psi(&shapes::cholesky_s3(), x).value(),
            psi(&shapes::mmm(), x).value(),
            1e-9,
        );
    }
}
