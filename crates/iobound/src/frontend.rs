//! A loop-nest frontend for the lower-bound machinery.
//!
//! The paper's input programs (Section 2.2) are statements inside loop
//! nests whose bounds may depend on outer iteration variables:
//!
//! ```text
//! for k = 1:N, for i = k+1:N, for j = k+1:N:
//!     A[i,j] <- A[i,j] - A[i,k]*A[k,j]
//! ```
//!
//! This module lets such programs be written down directly — variables with
//! (possibly triangular) bounds, accesses as variable lists — and derives
//! everything the symbolic pipeline needs: the [`StatementShape`] for the
//! ψ/ρ optimization, the exact iteration-domain size `|V|` for a given `N`,
//! and the [`StatementInstance`] consumed by the reuse machinery. It plays
//! the role IOLB's polyhedral frontend plays for that tool, for the
//! rectangular/triangular nests that dominate dense linear algebra.

use crate::program::StatementShape;
use crate::reuse::StatementInstance;

/// A loop bound: constant-offset expressions in `N` and outer variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// The constant 0.
    Zero,
    /// `N + offset` (offset may be negative).
    N(i64),
    /// `var + offset`, referring to an *outer* variable by index.
    Var(usize, i64),
}

impl Bound {
    fn eval(&self, n: i64, outer: &[i64]) -> i64 {
        match *self {
            Bound::Zero => 0,
            Bound::N(off) => n + off,
            Bound::Var(idx, off) => outer[idx] + off,
        }
    }
}

/// One loop variable with its half-open range `[lo, hi)`.
#[derive(Clone, Debug)]
pub struct LoopVar {
    /// Name, for reporting.
    pub name: String,
    /// Inclusive lower bound.
    pub lo: Bound,
    /// Exclusive upper bound.
    pub hi: Bound,
}

/// A statement inside a loop nest.
#[derive(Clone, Debug)]
pub struct NestedStatement {
    /// Statement name.
    pub name: String,
    /// Loop variables, outermost first.
    pub vars: Vec<LoopVar>,
    /// Input accesses: `(array, variable indices)`.
    pub inputs: Vec<(String, Vec<usize>)>,
    /// Lemma 6 parameter (out-degree-one input predecessors per vertex).
    pub outdegree_one_u: usize,
}

/// Builder entry point.
pub struct NestBuilder {
    stmt: NestedStatement,
}

impl NestBuilder {
    /// Start a statement description.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            stmt: NestedStatement {
                name: name.into(),
                vars: Vec::new(),
                inputs: Vec::new(),
                outdegree_one_u: 0,
            },
        }
    }

    /// Add a loop `for <name> in [lo, hi)`; returns the variable's index.
    pub fn var(mut self, name: impl Into<String>, lo: Bound, hi: Bound) -> Self {
        if let Bound::Var(idx, _) = lo {
            assert!(
                idx < self.stmt.vars.len(),
                "lower bound refers to an inner variable"
            );
        }
        if let Bound::Var(idx, _) = hi {
            assert!(
                idx < self.stmt.vars.len(),
                "upper bound refers to an inner variable"
            );
        }
        self.stmt.vars.push(LoopVar {
            name: name.into(),
            lo,
            hi,
        });
        self
    }

    /// Add an input access `array[vars...]`.
    pub fn input(mut self, array: impl Into<String>, vars: &[usize]) -> Self {
        assert!(
            vars.iter().all(|&v| v < self.stmt.vars.len()),
            "access variable out of range"
        );
        self.stmt.inputs.push((array.into(), vars.to_vec()));
        self
    }

    /// Set the Lemma 6 parameter.
    pub fn outdegree_one(mut self, u: usize) -> Self {
        self.stmt.outdegree_one_u = u;
        self
    }

    /// Finish.
    pub fn build(self) -> NestedStatement {
        assert!(
            !self.stmt.vars.is_empty(),
            "statement needs at least one loop"
        );
        self.stmt
    }
}

impl NestedStatement {
    /// The access shape for the ψ/ρ pipeline.
    pub fn shape(&self) -> StatementShape {
        let mut s = StatementShape::new(self.name.clone(), self.vars.len());
        for (array, vars) in &self.inputs {
            s = s.with_term(array.clone(), vars);
        }
        s
    }

    /// Exact iteration-domain size `|V|` for problem size `n`, by direct
    /// enumeration of the (possibly triangular) nest. `O(Π range)` time —
    /// use moderate `n` and extrapolate, or [`Self::domain_size_sampled`].
    pub fn domain_size(&self, n: i64) -> u64 {
        fn recurse(vars: &[LoopVar], n: i64, outer: &mut Vec<i64>) -> u64 {
            match vars.split_first() {
                None => 1,
                Some((v, rest)) => {
                    let lo = v.lo.eval(n, outer);
                    let hi = v.hi.eval(n, outer);
                    let mut total = 0;
                    // for rectangular remaining nests this loop could be
                    // closed-form, but exactness on triangular nests is the
                    // point here
                    let mut x = lo;
                    while x < hi {
                        outer.push(x);
                        total += recurse(rest, n, outer);
                        outer.pop();
                        x += 1;
                    }
                    total
                }
            }
        }
        recurse(&self.vars, n, &mut Vec::new())
    }

    /// Domain size as a float, by exact enumeration at a calibration size
    /// `n_cal` and cubic-polynomial scaling to the target `n` (dense linear
    /// algebra nests are polynomial in `N` of degree = nest depth ≤ 3).
    pub fn domain_size_sampled(&self, n: f64) -> f64 {
        // fit degree-d polynomial through d+1 exact small evaluations
        let d = self.vars.len().min(3);
        let samples: Vec<(f64, f64)> = (0..=d)
            .map(|i| {
                let nc = (8 + 4 * i) as i64;
                (nc as f64, self.domain_size(nc) as f64)
            })
            .collect();
        // Lagrange interpolation evaluated at n
        let mut total = 0.0;
        for (i, &(xi, yi)) in samples.iter().enumerate() {
            let mut term = yi;
            for (j, &(xj, _)) in samples.iter().enumerate() {
                if i != j {
                    term *= (n - xj) / (xi - xj);
                }
            }
            total += term;
        }
        total
    }

    /// Package for the reuse machinery at problem size `n` (exact domain).
    pub fn instance(&self, n: i64) -> StatementInstance {
        StatementInstance {
            shape: self.shape(),
            domain_size: self.domain_size(n) as f64,
            outdegree_one_u: self.outdegree_one_u,
        }
    }

    /// Package with the polynomial-extrapolated domain (for large `n`).
    pub fn instance_scaled(&self, n: f64) -> StatementInstance {
        StatementInstance {
            shape: self.shape(),
            domain_size: self.domain_size_sampled(n),
            outdegree_one_u: self.outdegree_one_u,
        }
    }
}

/// The LU program of Figure 1, written in the frontend.
pub fn lu_program() -> (NestedStatement, NestedStatement) {
    // S1: for k in 0..N, for i in k+1..N: A[i,k] /= A[k,k]
    let s1 = NestBuilder::new("LU-S1")
        .var("k", Bound::Zero, Bound::N(0))
        .var("i", Bound::Var(0, 1), Bound::N(0))
        .input("A_ik", &[0, 1])
        .input("A_kk", &[0])
        .outdegree_one(1)
        .build();
    // S2: for k, for i in k+1..N, for j in k+1..N: A[i,j] -= A[i,k]*A[k,j]
    let s2 = NestBuilder::new("LU-S2")
        .var("k", Bound::Zero, Bound::N(0))
        .var("i", Bound::Var(0, 1), Bound::N(0))
        .var("j", Bound::Var(0, 1), Bound::N(0))
        .input("A_ij", &[1, 2])
        .input("A_ik", &[0, 1])
        .input("A_kj", &[0, 2])
        .build();
    (s1, s2)
}

/// Full LU lower bound derived end-to-end through the frontend.
pub fn lu_bound_via_frontend(n: i64, m: f64) -> f64 {
    let (s1, s2) = lu_program();
    let a1 = crate::reuse::analyze(&s1.instance(n), m);
    let a2 = crate::reuse::analyze(&s2.instance(n), m);
    a1.q + a2.q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_domain_sizes() {
        let mmm = NestBuilder::new("MMM")
            .var("i", Bound::Zero, Bound::N(0))
            .var("j", Bound::Zero, Bound::N(0))
            .var("k", Bound::Zero, Bound::N(0))
            .input("A", &[0, 2])
            .input("B", &[2, 1])
            .input("C", &[0, 1])
            .build();
        assert_eq!(mmm.domain_size(4), 64);
        assert_eq!(mmm.domain_size(10), 1000);
    }

    #[test]
    fn triangular_domain_sizes_match_formulas() {
        let (s1, s2) = lu_program();
        for n in [2i64, 4, 7, 12] {
            let nf = n as f64;
            assert_eq!(s1.domain_size(n) as f64, nf * (nf - 1.0) / 2.0, "S1 n={n}");
            assert_eq!(
                s2.domain_size(n) as f64,
                (nf - 1.0) * nf * (2.0 * nf - 1.0) / 6.0,
                "S2 n={n}"
            );
        }
    }

    #[test]
    fn shape_matches_handwritten() {
        let (s1, s2) = lu_program();
        assert_eq!(s1.shape(), crate::program::shapes::lu_s1());
        // S2 var order here is (k, i, j) with accesses matching lu_s2's
        // structure: three 2-variable terms covering all three vars
        let sh = s2.shape();
        assert_eq!(sh.terms.len(), 3);
        assert!(sh.all_vars_constrained());
    }

    #[test]
    fn frontend_bound_matches_kernels() {
        for (n, m) in [(256i64, 256.0), (512, 1024.0)] {
            let via_frontend = lu_bound_via_frontend(n, m);
            let direct = crate::kernels::lu_bound(n as f64, m).q_total;
            let rel = (via_frontend - direct).abs() / direct;
            assert!(
                rel < 2e-2,
                "n={n}: frontend {via_frontend} vs direct {direct}"
            );
        }
    }

    #[test]
    fn sampled_extrapolation_is_accurate() {
        let (_, s2) = lu_program();
        let n = 300.0;
        let exact = s2.domain_size(300) as f64;
        let scaled = s2.domain_size_sampled(n);
        assert!(
            ((scaled - exact) / exact).abs() < 1e-9,
            "{scaled} vs {exact}"
        );
    }

    #[test]
    #[should_panic(expected = "inner variable")]
    fn forward_bound_reference_rejected() {
        let _ = NestBuilder::new("bad")
            .var("i", Bound::Var(1, 0), Bound::N(0)) // refers to var 1 before it exists
            .var("j", Bound::Zero, Bound::N(0))
            .build();
    }

    #[test]
    fn instance_feeds_reuse_machinery() {
        let (s1, _) = lu_program();
        let inst = s1.instance(64);
        let analysis = crate::reuse::analyze(&inst, 32.0);
        // rho_S1 = 1 via Lemma 6, so Q = |V|
        assert_eq!(analysis.rho, 1.0);
        assert_eq!(analysis.q, (64.0 * 63.0) / 2.0);
    }
}
