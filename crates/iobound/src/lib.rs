//! `iobound` — symbolic parallel I/O lower bounds for DAAP programs
//! (Sections 2.2, 3, 4, 5, 6 of the paper).
//!
//! The pipeline mirrors the paper's method:
//!
//! 1. describe a statement's access structure ([`program::StatementShape`]),
//! 2. solve the maximal-subcomputation problem `ψ(X)` ([`intensity::psi`],
//!    Problem 3),
//! 3. minimize the computational intensity `ρ(X) = ψ(X)/(X−M)` and apply
//!    the out-degree-one cap ([`rho`], Lemmas 2 and 6),
//! 4. compose statements through input/output reuse ([`reuse`], Lemmas 7–8),
//! 5. divide by `P` for the parallel machine ([`rho::q_lower_bound_parallel`],
//!    Lemma 9).
//!
//! [`kernels`] packages the full derivations for LU (the paper's Section 6
//! headline bound `2N³/(3P√M) + O(N²/P)`), MMM, Cholesky, and the §4.1/§4.2
//! worked examples; [`verify`] cross-checks soundness against executable
//! pebbling schedules from the `pebbling` crate.
//!
//! # Example
//!
//! The paper's Section 6 headline: sequential LU must move at least
//! `≈ 2N³/(3√M)` elements between fast and slow memory:
//!
//! ```
//! use iobound::{lu_bound, lu_bound_closed_form};
//!
//! let (n, m) = (1024.0, 4096.0);
//! let bound = lu_bound(n, m);
//! // the closed form agrees with the composed per-statement derivation
//! let closed = lu_bound_closed_form(n, m);
//! assert!((bound.q_total - closed).abs() / closed < 0.2);
//! assert!(closed > 2.0 * n * n * n / (3.2 * m.sqrt()));
//! ```

#![warn(missing_docs)]

pub mod frontend;
pub mod intensity;
pub mod kernels;
pub mod program;
pub mod reuse;
pub mod rho;
pub mod verify;

pub use frontend::{lu_program, Bound, NestBuilder, NestedStatement};
pub use intensity::{psi, Psi, PsiSolution};
pub use kernels::{lu_bound, lu_bound_closed_form, mmm_bound, LuBound};
pub use program::{shapes, AccessTerm, StatementShape};
pub use reuse::{analyze, apply_output_reuse, input_reuse, StatementInstance};
pub use rho::{minimize_rho, q_lower_bound, q_lower_bound_parallel, statement_rho, RhoResult};
