//! Inter-statement data reuse (Section 4).
//!
//! * **Case I — input reuse (Lemma 7)**: statements sharing an input array
//!   can avoid at most `Reuse(A) = min(|A(R_S)|, |A(R_T)|)` loads, where
//!   each total is the per-subcomputation access size at the optimum times
//!   the number of subcomputations (Equation 6).
//! * **Case II — output reuse (Lemma 8 / Corollary 1)**: when statement S
//!   produces the array statement T consumes, T's dominator constraint on
//!   that array weakens by the factor `1/ρ_S` — recomputation can substitute
//!   for loads when the producer is cheap.

use crate::intensity::{psi, Psi};
use crate::program::StatementShape;
use crate::rho::{minimize_rho, statement_rho};

/// A statement together with its iteration-domain size `|V|` and its
/// Lemma 6 parameter (0 if not applicable).
#[derive(Clone, Debug)]
pub struct StatementInstance {
    /// The statement's access shape.
    pub shape: StatementShape,
    /// Total number of compute vertices `|V|` of the statement.
    pub domain_size: f64,
    /// Lemma 6 `u`: minimum number of out-degree-one input predecessors.
    pub outdegree_one_u: usize,
}

/// Derived per-statement quantities used by the reuse bounds.
#[derive(Clone, Debug)]
pub struct StatementAnalysis {
    /// Final computational intensity (after the Lemma 6 cap).
    pub rho: f64,
    /// Sequential lower bound `|V|/ρ` of the statement alone.
    pub q: f64,
    /// Minimum number of subcomputations `|V| / ψ(X_0)`.
    pub subcomputations: f64,
    /// Access size of each array per optimal subcomputation.
    pub access_per_subcomp: Vec<(String, f64)>,
}

/// Analyze a single statement: ρ, Q, and the per-array access totals needed
/// by Equation 6.
pub fn analyze(stmt: &StatementInstance, m: f64) -> StatementAnalysis {
    let rho = statement_rho(&stmt.shape, m, stmt.outdegree_one_u);
    let q = if rho.is_infinite() {
        0.0
    } else {
        stmt.domain_size / rho
    };
    let (subcomputations, access_per_subcomp) = match minimize_rho(&stmt.shape, m) {
        Some(r) => {
            let subs = stmt.domain_size / r.psi_x0;
            let sizes = match psi(&stmt.shape, r.x0) {
                Psi::Bounded(sol) => stmt
                    .shape
                    .terms
                    .iter()
                    .filter(|t| t.coeff > 0.0)
                    .zip(&sol.term_sizes)
                    .map(|(t, &s)| (t.array.clone(), s))
                    .collect(),
                _ => vec![],
            };
            (subs, sizes)
        }
        None => (0.0, vec![]),
    };
    StatementAnalysis {
        rho,
        q,
        subcomputations,
        access_per_subcomp,
    }
}

/// Total accesses to `array` over the statement's optimal schedule
/// (`|A(R_max)| · |V|/|V_max|`, the quantity entering Equation 6).
pub fn total_accesses(analysis: &StatementAnalysis, array: &str) -> Option<f64> {
    analysis
        .access_per_subcomp
        .iter()
        .find(|(a, _)| a == array)
        .map(|(_, per)| per * analysis.subcomputations)
}

/// Lemma 7 / Equation 6: the reuse bound on a shared input array.
pub fn input_reuse(a: &StatementAnalysis, b: &StatementAnalysis, array: &str) -> f64 {
    match (total_accesses(a, array), total_accesses(b, array)) {
        (Some(x), Some(y)) => x.min(y),
        _ => 0.0,
    }
}

/// Case I composition: `Q_tot ≥ Σ Q_i − Σ Reuse(A_j)` over the shared
/// arrays listed in `shared` (pairs of statement indices and array name).
pub fn case1_bound(analyses: &[StatementAnalysis], shared: &[(usize, usize, &str)]) -> f64 {
    let q_sum: f64 = analyses.iter().map(|a| a.q).sum();
    let reuse_sum: f64 = shared
        .iter()
        .map(|&(i, j, arr)| input_reuse(&analyses[i], &analyses[j], arr))
        .sum();
    (q_sum - reuse_sum).max(0.0)
}

/// Case II / Corollary 1: weaken the consumer's dominator term on `array`
/// by the producer's intensity — the term's coefficient becomes
/// `1/ρ_producer` (dropped entirely if the producer recomputes for free).
///
/// When `ρ_producer ≤ 1` recomputation is never profitable and the shape is
/// returned unchanged, matching the paper's observation for LU (S1 → S2).
pub fn apply_output_reuse(
    consumer: &StatementShape,
    array: &str,
    rho_producer: f64,
) -> StatementShape {
    let mut shape = consumer.clone();
    if rho_producer <= 1.0 {
        return shape;
    }
    let coeff = if rho_producer.is_infinite() {
        0.0
    } else {
        1.0 / rho_producer
    };
    shape.set_coeff(array, coeff);
    shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::shapes;
    use crate::program::StatementShape;
    use crate::rho::q_lower_bound;

    fn assert_close(a: f64, b: f64, rel: f64) {
        assert!((a - b).abs() <= rel * b.abs().max(1e-12), "{a} !~ {b}");
    }

    fn sec41_instance(shape: StatementShape, n: f64) -> StatementInstance {
        StatementInstance {
            shape,
            domain_size: n * n * n,
            outdegree_one_u: 0,
        }
    }

    #[test]
    fn sec41_example_end_to_end() {
        // Paper §4.1: Q_S = Q_T = N^3/M, Reuse(B) = N^3/M,
        // Q_tot = N^3/M.
        let n = 4096.0;
        let m = 1024.0;
        let s = analyze(&sec41_instance(shapes::sec41_s(), n), m);
        let t = analyze(&sec41_instance(shapes::sec41_t(), n), m);
        assert_close(s.q, n * n * n / m, 1e-2);
        assert_close(t.q, n * n * n / m, 1e-2);
        let reuse = input_reuse(&s, &t, "B");
        assert_close(reuse, n * n * n / m, 1e-2);
        let q_tot = case1_bound(&[s, t], &[(0, 1, "B")]);
        assert_close(q_tot, n * n * n / m, 1e-2);
    }

    #[test]
    fn reuse_of_unshared_array_is_zero() {
        let n = 128.0;
        let m = 64.0;
        let s = analyze(&sec41_instance(shapes::sec41_s(), n), m);
        let t = analyze(&sec41_instance(shapes::sec41_t(), n), m);
        assert_eq!(input_reuse(&s, &t, "Z"), 0.0);
        // "A" exists only in S
        assert_eq!(input_reuse(&s, &t, "A"), 0.0);
    }

    #[test]
    fn sec42_output_reuse_drops_the_term() {
        // §4.2: producer has rho = inf; consumer MMM's A-term vanishes and
        // the combined bound becomes N^3/M instead of 2N^3/sqrt(M).
        let n = 2048.0;
        let m = 1024.0;
        let weakened = apply_output_reuse(&shapes::mmm(), "A", f64::INFINITY);
        assert_eq!(weakened.term("A").unwrap().coeff, 0.0);
        let inst = StatementInstance {
            shape: weakened,
            domain_size: n * n * n,
            outdegree_one_u: 0,
        };
        let a = analyze(&inst, m);
        assert_close(a.q, n * n * n / m, 1e-2);
        // the original bound is much larger
        let orig = analyze(
            &StatementInstance {
                shape: shapes::mmm(),
                domain_size: n * n * n,
                outdegree_one_u: 0,
            },
            m,
        );
        assert_close(orig.q, 2.0 * n * n * n / m.sqrt(), 1e-2);
        assert!(a.q < orig.q);
    }

    #[test]
    fn lu_output_reuse_is_neutral() {
        // S1 -> S2 with rho_S1 = 1: coefficient unchanged (recomputation
        // not profitable), exactly the paper's Section 6 observation.
        let weakened = apply_output_reuse(&shapes::lu_s2(), "A_ik", 1.0);
        assert_eq!(weakened, shapes::lu_s2());
    }

    #[test]
    fn output_reuse_with_moderate_rho_halves_coefficient() {
        let weakened = apply_output_reuse(&shapes::mmm(), "B", 2.0);
        assert_eq!(weakened.term("B").unwrap().coeff, 0.5);
        // weaker constraint => larger psi => larger rho at same X... but
        // the minimized bound can only drop or stay:
        let m = 256.0;
        let q_orig = q_lower_bound(1e9, crate::rho::statement_rho(&shapes::mmm(), m, 0));
        let q_weak = q_lower_bound(1e9, crate::rho::statement_rho(&weakened, m, 0));
        assert!(q_weak <= q_orig + 1.0);
    }

    #[test]
    fn case1_never_negative() {
        let n = 64.0;
        let m = 32.0;
        let s = analyze(&sec41_instance(shapes::sec41_s(), n), m);
        let t = analyze(&sec41_instance(shapes::sec41_t(), n), m);
        // artificially count the same reuse many times
        let shared = vec![(0usize, 1usize, "B"); 10];
        assert!(case1_bound(&[s, t], &shared) >= 0.0);
    }

    #[test]
    fn analysis_exposes_subcomputation_counts() {
        let n = 4096.0;
        let m = 1024.0;
        let s = analyze(&sec41_instance(shapes::sec41_s(), n), m);
        // |V|/psi(X0) = N^3/M^2
        assert_close(s.subcomputations, n * n * n / (m * m), 1e-2);
        // B per subcomputation = M
        let b = s
            .access_per_subcomp
            .iter()
            .find(|(a, _)| a == "B")
            .map(|(_, v)| *v)
            .unwrap();
        assert_close(b, m, 1e-2);
    }
}
