//! 2D block-cyclic right-looking LU with partial pivoting — the
//! ScaLAPACK algorithm that both Cray LibSci and (with a tile layout)
//! SLATE implement. Communication volume per rank is `N²/√P + O(N²/P)`
//! (Table 2), dominated by the L/U panel broadcasts along process
//! rows/columns.
//!
//! Numerics run on the orchestrator's global view (they are exactly
//! `denselin`'s blocked LU); *communication* is counted per the 2D
//! block-cyclic ownership of every fragment, reproducing pdgetrf's
//! pattern: per-column pivot allreduce, physical row swaps, panel
//! broadcast along rows, U broadcast along columns.

use denselin::blockcyclic::BlockCyclic2D;
use denselin::lu::lu_unblocked;
use denselin::matrix::Matrix;
use denselin::trsm::trsm_lower_left;
use simnet::network::Network;
use simnet::stats::CommStats;
use simnet::topology::Grid3D;

use conflux::tiles::Mode;

/// Which 2D library flavour to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Cray LibSci / ScaLAPACK: user-specified panel width (commonly 64),
    /// row-major process grid.
    LibSci,
    /// SLATE: tile layout with small default tiles, column-major process
    /// grid (slightly better for non-square grids, as the paper observes).
    Slate,
}

/// Configuration of a 2D LU run.
#[derive(Clone, Debug)]
pub struct Lu2dConfig {
    /// Matrix order.
    pub n: usize,
    /// Panel / tile width.
    pub nb: usize,
    /// Process grid rows.
    pub pr: usize,
    /// Process grid cols.
    pub pc: usize,
    /// Library flavour.
    pub variant: Variant,
    /// Dense or Phantom.
    pub mode: Mode,
    /// Seed for synthetic pivots in Phantom mode.
    pub seed: u64,
    /// Record a virtual-time event timeline ([`Lu2dRun::timeline`]).
    pub timeline: bool,
}

impl Lu2dConfig {
    /// Standard configuration for `p` ranks: the squarest grid the library
    /// would greedily pick, with the variant's default block size.
    pub fn for_ranks(n: usize, p: usize, variant: Variant, mode: Mode) -> Self {
        let (pr, pc) = simnet::topology::squarest_2d(p);
        let nb = match variant {
            Variant::LibSci => 64.min(n).max(1),
            Variant::Slate => 32.min(n).max(1),
        };
        // keep at least a few panels so the pattern is exercised
        let nb = nb.min((n / 4).max(1));
        Self {
            n,
            nb,
            pr,
            pc,
            variant,
            mode,
            seed: 0x2d,
            timeline: false,
        }
    }

    /// Record a virtual-time event timeline (builder style).
    pub fn with_timeline(mut self) -> Self {
        self.timeline = true;
        self
    }

    /// Total ranks.
    pub fn ranks(&self) -> usize {
        self.pr * self.pc
    }
}

/// Result of a 2D LU run.
pub struct Lu2dRun {
    /// Communication record.
    pub stats: CommStats,
    /// Factors (Dense mode): packed like [`denselin::lu::LuFactorization`].
    pub factors: Option<denselin::lu::LuFactorization>,
    /// Event timeline (only when `config.timeline` was set).
    pub timeline: Option<simnet::trace::Trace>,
}

/// Run the 2D algorithm.
pub fn factorize_2d(cfg: &Lu2dConfig, a: Option<&Matrix>) -> Lu2dRun {
    let n = cfg.n;
    let (pr, pc) = (cfg.pr, cfg.pc);
    let p = pr * pc;
    let topo = Grid3D::new(pr, pc, 1);
    let mut net = Network::new(p);
    if cfg.timeline {
        net.enable_timeline();
    }
    let map = BlockCyclic2D::new(n, n, cfg.nb, cfg.nb, pr, pc);

    let mut lu = a.cloned();
    if cfg.mode == Mode::Dense {
        assert!(lu.is_some(), "Dense mode requires the input matrix");
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    let rank_of = |i: usize, j: usize| topo.rank_of(i, j, 0);
    let owner_row = |g: usize| map.rows.owner(g);
    let owner_col = |g: usize| map.cols.owner(g);

    let mut kb = 0;
    let mut rng_state = cfg.seed;
    while kb < n {
        let b = cfg.nb.min(n - kb);
        let panel_pc = owner_col(kb); // process column holding the panel

        // ---- panel factorization with partial pivoting ----
        // numerics: factor the global panel; counting: per-column pivot
        // allreduce over the pr ranks of the panel process column, pivot
        // row broadcast, and in-panel row swap.
        let panel_pivots: Vec<usize> = if let Some(m) = lu.as_mut() {
            let panel = m.block(kb, kb, n - kb, b);
            let pf = lu_unblocked(&panel).expect("panel singular");
            // local pivot indices -> global rows (relative to kb)
            let pivots: Vec<usize> = (0..b).map(|i| kb + pf.perm[i]).collect();
            // apply the panel permutation to full rows of the matrix
            apply_block_permutation(m, &mut perm, &mut sign, kb, &pf.perm);
            m.set_block(kb, kb, &pf.lu);
            pivots
        } else {
            // Phantom: synthetic pivots spread over remaining rows
            (0..b)
                .map(|i| {
                    rng_state = rng_state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    kb + i + (rng_state >> 33) as usize % (n - kb - i)
                })
                .collect()
        };
        // counting for the panel phase
        let col_group = topo.column_group(panel_pc, 0);
        for (j, &piv) in panel_pivots.iter().enumerate() {
            // pivot search: allreduce of (value, index)
            net.allreduce(&col_group, 2, "panel:pivot-allreduce");
            // pivot row segment broadcast within the process column
            net.broadcast(&col_group, (b - j) as u64, "panel:pivot-row-bcast");
            // swap within panel columns if the rows live on different ranks
            let target = kb + j;
            if owner_row(piv) != owner_row(target) {
                let src = rank_of(owner_row(piv), panel_pc);
                let dst = rank_of(owner_row(target), panel_pc);
                net.send(src, dst, b as u64, "panel:swap");
                net.send(dst, src, b as u64, "panel:swap");
            }
        }
        // analytic compute charge: the (n-kb)·b² panel flops are split over
        // the pr ranks of the panel process column
        if net.tracer.enabled() {
            let flops = (n - kb) as f64 * (b * b) as f64 / pr as f64;
            for &r in &col_group {
                net.compute(r, flops, "panel:factor", "getrf");
            }
        }

        // ---- laswp: apply the b swaps across the rest of the matrix ----
        for (j, &piv) in panel_pivots.iter().enumerate() {
            let target = kb + j;
            if owner_row(piv) == owner_row(target) {
                continue;
            }
            // full row (width n - b: everything outside the panel) split
            // over the pc process columns; both rows move.
            let per_col = ((n - b) / pc).max(1) as u64;
            for jc in 0..pc {
                let srow = rank_of(owner_row(piv), jc);
                let trow = rank_of(owner_row(target), jc);
                net.send(srow, trow, per_col, "laswp");
                net.send(trow, srow, per_col, "laswp");
            }
        }

        let trailing_rows = n - kb - b;
        let trailing_cols = n - kb - b;

        // ---- U panel: L00^{-1} * A01, then broadcast down columns ----
        if trailing_cols > 0 {
            if let Some(m) = lu.as_mut() {
                let l00 = m.block(kb, kb, b, b);
                let mut a01 = m.block(kb, kb + b, b, trailing_cols);
                trsm_lower_left(&l00, &mut a01, true);
                m.set_block(kb, kb + b, &a01);
            }
            // the pivot block row (b x trailing) lives on process row
            // owner_row(kb); each owner broadcasts its share down its column
            let urow = owner_row(kb);
            for jc in 0..pc {
                let share = (trailing_cols / pc) as u64 * b as u64;
                let group = topo.column_group(jc, 0);
                let root = rank_of(urow, jc);
                net.broadcast_from(root, &group, share, "u-bcast");
            }
        }

        // ---- L panel broadcast along rows ----
        if trailing_rows > 0 && trailing_cols > 0 {
            for ir in 0..pr {
                let share = (trailing_rows / pr) as u64 * b as u64;
                let group = topo.row_group(ir, 0);
                let root = rank_of(ir, panel_pc);
                net.broadcast_from(root, &group, share, "l-bcast");
            }
            // ---- trailing update (local) ----
            if let Some(m) = lu.as_mut() {
                let l10 = m.block(kb + b, kb, trailing_rows, b);
                let a01 = m.block(kb, kb + b, b, trailing_cols);
                let mut a11 = m.block(kb + b, kb + b, trailing_rows, trailing_cols);
                denselin::gemm::gemm_auto(&mut a11, -1.0, &l10, &a01, 1.0);
                m.set_block(kb + b, kb + b, &a11);
            }
            // analytic compute charge: 2·m·b·k GEMM flops over all p ranks
            net.compute_all(
                2.0 * trailing_rows as f64 * b as f64 * trailing_cols as f64 / p as f64,
                "update",
                "gemm",
            );
        }

        kb += b;
    }

    let factors = lu.map(|m| denselin::lu::LuFactorization { lu: m, perm, sign });
    let timeline = net.take_timeline();
    Lu2dRun {
        stats: net.stats,
        factors,
        timeline,
    }
}

/// Apply a panel-local permutation (as produced by `lu_unblocked` on the
/// sub-panel starting at global row `kb`) to the full rows of `m` outside
/// the panel columns and to the permutation bookkeeping.
fn apply_block_permutation(
    m: &mut Matrix,
    perm: &mut [usize],
    sign: &mut f64,
    kb: usize,
    panel_perm: &[usize],
) {
    let rows = panel_perm.len();
    let n = m.cols();
    let mut saved: Vec<Vec<f64>> = Vec::with_capacity(rows);
    let mut saved_perm = Vec::with_capacity(rows);
    for i in 0..rows {
        saved.push(m.row(kb + i).to_vec());
        saved_perm.push(perm[kb + i]);
    }
    for (i, &src) in panel_perm.iter().enumerate() {
        m.row_mut(kb + i).copy_from_slice(&saved[src]);
        perm[kb + i] = saved_perm[src];
    }
    *sign *= denselin::lu::permutation_sign(panel_perm);
    let _ = n;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_2d_correct() {
        let mut rng = StdRng::seed_from_u64(11);
        for (n, p) in [(32, 4), (48, 6), (64, 16)] {
            let a = Matrix::random(&mut rng, n, n);
            let mut cfg = Lu2dConfig::for_ranks(n, p, Variant::LibSci, Mode::Dense);
            cfg.nb = 8;
            let run = factorize_2d(&cfg, Some(&a));
            let f = run.factors.unwrap();
            assert!(f.residual(&a) < 1e-10, "n={n} p={p} res={}", f.residual(&a));
        }
    }

    #[test]
    fn dense_matches_reference_lu_pivots() {
        // the simulated algorithm IS partial pivoting, so pivot choice must
        // agree with the serial reference
        let mut rng = StdRng::seed_from_u64(12);
        let a = Matrix::random(&mut rng, 40, 40);
        let mut cfg = Lu2dConfig::for_ranks(40, 4, Variant::LibSci, Mode::Dense);
        cfg.nb = 10;
        let run = factorize_2d(&cfg, Some(&a));
        let reference = denselin::lu::lu_unblocked(&a).unwrap();
        assert_eq!(run.factors.unwrap().perm, reference.perm);
    }

    #[test]
    fn phantom_counts_without_data() {
        let cfg = Lu2dConfig::for_ranks(256, 16, Variant::Slate, Mode::Phantom);
        let run = factorize_2d(&cfg, None);
        assert!(run.factors.is_none());
        assert!(run.stats.total_sent() > 0);
        let phases = run.stats.phases();
        assert!(phases.contains(&"l-bcast"));
        assert!(phases.contains(&"u-bcast"));
        assert!(phases.contains(&"laswp"));
    }

    #[test]
    fn volume_scales_like_n_squared_over_sqrt_p() {
        // strong scaling: per-rank volume ~ N^2/sqrt(P): quadrupling P
        // should roughly halve per-rank volume
        let n = 512;
        let run4 = factorize_2d(
            &Lu2dConfig::for_ranks(n, 4, Variant::LibSci, Mode::Phantom),
            None,
        );
        let run16 = factorize_2d(
            &Lu2dConfig::for_ranks(n, 16, Variant::LibSci, Mode::Phantom),
            None,
        );
        let per4 = run4.stats.total_sent() as f64 / 4.0;
        let per16 = run16.stats.total_sent() as f64 / 16.0;
        let ratio = per4 / per16;
        assert!(
            (1.4..3.0).contains(&ratio),
            "expected ~2x per-rank reduction, got {ratio} (per4={per4} per16={per16})"
        );
    }

    #[test]
    fn slate_and_libsci_volumes_similar() {
        let n = 512;
        let p = 16;
        let l = factorize_2d(
            &Lu2dConfig::for_ranks(n, p, Variant::LibSci, Mode::Phantom),
            None,
        );
        let s = factorize_2d(
            &Lu2dConfig::for_ranks(n, p, Variant::Slate, Mode::Phantom),
            None,
        );
        let ratio = l.stats.total_sent() as f64 / s.stats.total_sent() as f64;
        assert!((0.5..2.0).contains(&ratio), "LibSci/SLATE ratio {ratio}");
    }

    #[test]
    fn phantom_synthetic_pivots_in_range() {
        // the LCG-based picks must stay within the active submatrix
        let cfg = Lu2dConfig::for_ranks(128, 4, Variant::LibSci, Mode::Phantom);
        // executing without panics is the assertion (debug asserts active)
        let _ = factorize_2d(&cfg, None);
    }
}
