//! CANDMC-style 2.5D communication-avoiding LU (Solomonik & Demmel).
//!
//! Same 2.5D skeleton as COnfLUX — `[q, q, c]` grid, layered Schur
//! accumulation, tournament pivoting — but with the costs the paper
//! attributes to CANDMC's published algorithm:
//!
//! 1. **physical row swapping** on `c`-fold replicated data (the cost the
//!    paper's row-masking avoids),
//! 2. **TSLU across all layers**: the pivot panel is gathered redundantly
//!    on every layer before the tournament,
//! 3. **panel broadcasts to two layers** (the current update layer and the
//!    pipelined look-ahead layer) through block broadcasts instead of
//!    COnfLUX's 1D redistribution + single-layer sends.
//!
//! This reproduces the paper's *measured* CANDMC band (~2-3x COnfLUX at the
//! `c = P^(1/3)` replication of the experiments) while keeping the
//! asymptotically optimal `O(N³/(P√M))` scaling and CANDMC's flat weak
//! scaling. The *model* used in Table 2 is the authors' published
//! `5N³/(P√M)`, exactly as in the paper (whose own measured/model gap for
//! CANDMC was ~2x).

use denselin::matrix::Matrix;
use denselin::tournament::tournament_pivots;
use denselin::trsm::{trsm_lower_left, trsm_upper_right};
use simnet::network::Network;
use simnet::stats::CommStats;

use conflux::grid::LuGrid;
use conflux::tiles::Mode;

/// Configuration of a CANDMC-like run.
#[derive(Clone, Debug)]
pub struct CandmcConfig {
    /// Matrix order (must be divisible by `v`).
    pub n: usize,
    /// Panel width.
    pub v: usize,
    /// The 2.5D grid.
    pub grid: LuGrid,
    /// Dense or Phantom.
    pub mode: Mode,
    /// Seed (Phantom pivot synthesis).
    pub seed: u64,
    /// Record a virtual-time event timeline ([`CandmcRun::timeline`]).
    pub timeline: bool,
}

impl CandmcConfig {
    /// Phantom volume-measurement configuration.
    pub fn phantom(n: usize, v: usize, grid: LuGrid) -> Self {
        Self {
            n,
            v,
            grid,
            mode: Mode::Phantom,
            seed: 0xca4d,
            timeline: false,
        }
    }

    /// Dense configuration.
    pub fn dense(n: usize, v: usize, grid: LuGrid) -> Self {
        Self {
            n,
            v,
            grid,
            mode: Mode::Dense,
            seed: 0xca4d,
            timeline: false,
        }
    }

    /// Record a virtual-time event timeline (builder style).
    pub fn with_timeline(mut self) -> Self {
        self.timeline = true;
        self
    }
}

/// Result of a CANDMC-like run.
pub struct CandmcRun {
    /// Communication record.
    pub stats: CommStats,
    /// Factors in packed form with the row permutation (Dense mode).
    pub factors: Option<denselin::lu::LuFactorization>,
    /// Event timeline (only when `config.timeline` was set).
    pub timeline: Option<simnet::trace::Trace>,
}

/// Run the CANDMC-like 2.5D LU.
pub fn factorize_candmc(cfg: &CandmcConfig, a: Option<&Matrix>) -> CandmcRun {
    let (n, v) = (cfg.n, cfg.v);
    assert!(n % v == 0, "v must divide n");
    let (q, c) = (cfg.grid.q, cfg.grid.c);
    let topo = cfg.grid.topology();
    let p = topo.ranks();
    let nb = n / v;
    let mut net = Network::new(p);
    if cfg.timeline {
        net.enable_timeline();
    }

    let mut lu = a.cloned();
    if cfg.mode == Mode::Dense {
        assert!(lu.is_some(), "Dense mode requires the input matrix");
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    let owner_brow = |g: usize| (g / v) % q; // grid row of a global row

    for t in 0..nb {
        let kb = t * v;
        let _kt = t % c;
        let rem = n - kb;
        let trailing = rem - v;
        let col_j = t % q;

        // ---- TSLU: gather the panel redundantly on every layer ----
        // each block-row share (rem/q rows x v) is replicated to the other
        // c-1 layers of its fiber before the tournament
        for i in 0..q {
            let fiber = topo.layer_fiber(i, col_j);
            let share = ((rem / q) * v) as u64;
            net.broadcast(&fiber, share, "tslu:panel-replicate");
        }
        // tournament across all q*c column ranks (all layers participate)
        let mut group = Vec::with_capacity(q * c);
        for k in 0..c {
            group.extend(topo.column_group(col_j, k));
        }
        net.butterfly(&group, (v * (v + 1)) as u64, "tslu:tournament");

        // ---- pivoting numerics + physical row swaps ----
        let pivots: Vec<usize> = if let Some(m) = lu.as_mut() {
            let panel = m.block(kb, kb, rem, v);
            let sel = tournament_pivots(&panel, v, q * c);
            sel.pivot_rows.iter().map(|&r| kb + r).collect()
        } else {
            let mut state = cfg.seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15);
            (0..v)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    kb + i + (state >> 33) as usize % (rem - i)
                })
                .collect()
        };
        // swap pivots into the top-of-panel positions on EVERY layer; data
        // is replicated, so every copy moves (the Section 7.3 cost).
        // Earlier swaps can displace a later pivot row: rename it to the
        // slot its contents moved to.
        let mut pivots = pivots;
        for i in 0..pivots.len() {
            let piv = pivots[i];
            let target = kb + i;
            for later in pivots.iter_mut().skip(i + 1) {
                if *later == target {
                    *later = piv;
                }
            }
            if let Some(m) = lu.as_mut() {
                swap_rows(m, piv, target);
                perm.swap(piv, target);
                if piv != target {
                    sign = -sign;
                }
            }
            if owner_brow(piv) != owner_brow(target) {
                // the two full rows (width rem) are exchanged between their
                // owner rows in every grid column and on every layer
                let per_col = (rem / q).max(1) as u64;
                for j in 0..q {
                    for k in 0..c {
                        let s = topo.rank_of(owner_brow(piv), j, k);
                        let d = topo.rank_of(owner_brow(target), j, k);
                        net.send(s, d, per_col, "swap");
                        net.send(d, s, per_col, "swap");
                    }
                }
            }
        }

        // ---- broadcast A00 to the column/row groups ----
        net.broadcast(&topo.all_ranks(), (v * v) as u64, "a00-bcast");

        // ---- factor the diagonal block (numerics on the global view) ----
        if let Some(m) = lu.as_mut() {
            let panel = m.block(kb, kb, v, v);
            let pf = denselin::tournament::lu_no_pivot(&panel);
            m.set_block(kb, kb, &pf);
        }

        if trailing > 0 {
            if let Some(m) = lu.as_mut() {
                let pf = m.block(kb, kb, v, v);
                // L10 = A10 U00^{-1}
                let mut a10 = m.block(kb + v, kb, trailing, v);
                trsm_upper_right(&mut a10, &pf, false);
                m.set_block(kb + v, kb, &a10);
                // U01 = L00^{-1} A01
                let mut a01 = m.block(kb, kb + v, v, trailing);
                trsm_lower_left(&pf, &mut a01, true);
                m.set_block(kb, kb + v, &a01);
                // Schur update
                let mut a11 = m.block(kb + v, kb + v, trailing, trailing);
                denselin::gemm::gemm_auto(&mut a11, -1.0, &a10, &a01, 1.0);
                m.set_block(kb + v, kb + v, &a11);
            }

            // ---- panel broadcasts: L along rows, U along columns, on the
            // current update layer AND the look-ahead layer of the
            // pipelined schedule — twice COnfLUX's amortized single-layer
            // sends ----
            let layers: Vec<usize> = if c > 1 {
                vec![_kt, (t + 1) % c]
            } else {
                vec![0]
            };
            for &k in &layers {
                for i in 0..q {
                    let share = ((trailing / q) * v) as u64;
                    let group = topo.row_group(i, k);
                    net.broadcast_from(topo.rank_of(i, col_j, k), &group, share, "l-panel-bcast");
                }
                for j in 0..q {
                    let share = ((trailing / q) * v) as u64;
                    let group = topo.column_group(j, k);
                    net.broadcast_from(topo.rank_of(t % q, j, k), &group, share, "u-panel-bcast");
                }
            }

            // analytic compute charge: 2·trailing²·v Schur GEMM flops over p
            net.compute_all(
                2.0 * (trailing * trailing) as f64 * v as f64 / p as f64,
                "update",
                "gemm",
            );

            // ---- layered Schur accumulation: reduce the next panel
            // column (and pivot row candidates) across layers ----
            if c > 1 {
                for i in 0..q {
                    let fiber = topo.layer_fiber(i, (t + 1) % q);
                    net.reduce(&fiber, ((trailing / q) * v) as u64, "reduce-next-column");
                }
            }
        }
    }

    let factors = lu.map(|m| denselin::lu::LuFactorization { lu: m, perm, sign });
    let timeline = net.take_timeline();
    CandmcRun {
        stats: net.stats,
        factors,
        timeline,
    }
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    let (lo, hi) = (a.min(b), a.max(b));
    let (head, tail) = m.as_mut_slice().split_at_mut(hi * cols);
    head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_candmc_correct() {
        let mut rng = StdRng::seed_from_u64(21);
        for (n, v, q, c) in [(32, 4, 2, 1), (48, 8, 2, 2), (64, 8, 2, 2)] {
            let a = Matrix::random(&mut rng, n, n);
            let grid = LuGrid::new(q * q * c, q, c);
            let cfg = CandmcConfig::dense(n, v, grid);
            let run = factorize_candmc(&cfg, Some(&a));
            let f = run.factors.unwrap();
            assert!(
                f.residual(&a) < 1e-9,
                "n={n} v={v} q={q} c={c} res={}",
                f.residual(&a)
            );
        }
    }

    #[test]
    fn phantom_counts() {
        let grid = LuGrid::new(8, 2, 2);
        let cfg = CandmcConfig::phantom(128, 8, grid);
        let run = factorize_candmc(&cfg, None);
        assert!(run.stats.total_sent() > 0);
        assert!(run.stats.phases().contains(&"swap"));
        assert!(run.stats.phases().contains(&"l-panel-bcast"));
    }

    #[test]
    fn candmc_communicates_more_than_conflux() {
        // The paper measures CANDMC at ~2.3x COnfLUX for Table 2's P=64
        // configurations (2.5/1.11 GB); check the same regime qualitatively.
        let n = 1024;
        let v = 32;
        let grid = LuGrid::new(64, 4, 4);
        let candmc = factorize_candmc(&CandmcConfig::phantom(n, v, grid), None);
        let cflux = conflux::factorize(&conflux::ConfluxConfig::phantom(n, v, grid), None);
        let ratio = candmc.stats.total_sent() as f64 / cflux.stats.total_sent() as f64;
        assert!(
            ratio > 1.5,
            "CANDMC-like should cost much more than COnfLUX: ratio {ratio}"
        );
        assert!(
            ratio < 8.0,
            "CANDMC-like suspiciously expensive: ratio {ratio}"
        );
    }

    #[test]
    fn swap_volume_grows_with_replication() {
        let n = 256;
        let v = 8;
        let c1 = factorize_candmc(&CandmcConfig::phantom(n, v, LuGrid::new(4, 2, 1)), None);
        let c4 = factorize_candmc(&CandmcConfig::phantom(n, v, LuGrid::new(16, 2, 4)), None);
        assert!(c4.stats.sent_in_phase("swap") > c1.stats.sent_in_phase("swap"));
    }
}
