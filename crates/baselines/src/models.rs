//! Analytic communication models of Table 2.
//!
//! | library  | decomposition | parallel I/O cost per rank        |
//! |----------|---------------|-----------------------------------|
//! | LibSci   | 2D panel      | `N²/√P + O(N²/P)`                 |
//! | SLATE    | 2D block      | `N²/√P + O(N²/P)`                 |
//! | CANDMC   | nested 2.5D   | `5N³/(P√M) + O(N²/(P√M))` \[56\]    |
//! | COnfLUX  | 1D/2.5D       | `N³/(P√M) + O(N²/(P√M))`          |
//!
//! All functions return **elements per rank**; multiply by
//! [`simnet::stats::ELEMENT_BYTES`] for bytes, and by `P` for the totals
//! Table 2 prints.

/// LibSci (Cray ScaLAPACK) model: `N²/√P` leading term plus the
/// swap/panel lower-order terms.
pub fn libsci_per_rank(n: f64, p: f64) -> f64 {
    n * n / p.sqrt() + 2.0 * n * n / p
}

/// SLATE model — same 2D decomposition, same leading term.
pub fn slate_per_rank(n: f64, p: f64) -> f64 {
    n * n / p.sqrt() + 2.0 * n * n / p
}

/// CANDMC model, from Solomonik & Demmel (reference \[56\] of the paper).
pub fn candmc_per_rank(n: f64, p: f64, m: f64) -> f64 {
    5.0 * n * n * n / (p * m.sqrt()) + n * n / (p * m.sqrt()) * 8.0
}

/// COnfLUX model (Lemma 10).
pub fn conflux_per_rank(n: f64, p: f64, m: f64) -> f64 {
    n * n * n / (p * m.sqrt()) + n * n / p
}

/// Memory per rank in the paper's Fig. 6 regime: enough for maximum
/// replication, `M = N²/P^(2/3)` (so that `c = P^(1/3)`).
pub fn fig6_memory(n: f64, p: f64) -> f64 {
    n * n / p.powf(2.0 / 3.0)
}

/// All four models at once: `(libsci, slate, candmc, conflux)` per rank.
pub fn all_models_per_rank(n: f64, p: f64, m: f64) -> (f64, f64, f64, f64) {
    (
        libsci_per_rank(n, p),
        slate_per_rank(n, p),
        candmc_per_rank(n, p, m),
        conflux_per_rank(n, p, m),
    )
}

/// Predicted crossover: the paper observes CANDMC's asymptotic optimality
/// only pays off beyond ~450k ranks at N = 16,384. Returns the smallest
/// `P` (power of two search) at which CANDMC's model beats LibSci's.
pub fn candmc_crossover_p(n: f64) -> f64 {
    let mut p = 2.0_f64;
    while p < 1e9 {
        let m = fig6_memory(n, p);
        if candmc_per_rank(n, p, m) < libsci_per_rank(n, p) {
            return p;
        }
        p *= 2.0;
    }
    f64::INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_magnitudes_n4096_p64() {
        // Paper Table 2, N=4096, P=64 modeled totals (GB, 8-byte elems):
        // LibSci 1.21, SLATE 1.21, CANDMC 4.9, COnfLUX 1.08.
        let n = 4096.0;
        let p = 64.0;
        let m = fig6_memory(n, p);
        let gb = |per_rank: f64| per_rank * p * 8.0 / 1e9;
        let (l, s, c, x) = all_models_per_rank(n, p, m);
        // our models land in the same ballpark (binary vs decimal GB,
        // lower-order constants): within 2x of the paper's numbers
        assert!((0.5..2.5).contains(&(gb(l) / 1.21)), "libsci {}", gb(l));
        assert!((0.5..2.5).contains(&(gb(s) / 1.21)), "slate {}", gb(s));
        assert!((0.4..2.5).contains(&(gb(c) / 4.9)), "candmc {}", gb(c));
        assert!((0.4..2.5).contains(&(gb(x) / 1.08)), "conflux {}", gb(x));
    }

    #[test]
    fn conflux_beats_everyone_in_paper_regimes() {
        for (n, p) in [
            (4096.0, 64.0),
            (4096.0, 1024.0),
            (16384.0, 64.0),
            (16384.0, 1024.0),
        ] {
            let m = fig6_memory(n, p);
            let (l, s, c, x) = all_models_per_rank(n, p, m);
            assert!(x < l && x < s && x < c, "n={n} p={p}: {l} {s} {c} {x}");
        }
    }

    #[test]
    fn candmc_worse_than_2d_at_measured_scales() {
        // the paper: "for all measured data points, the asymptotically
        // optimal CANDMC performed worse than LibSci or SLATE"
        for p in [64.0, 256.0, 1024.0] {
            let n = 16384.0;
            let m = fig6_memory(n, p);
            assert!(candmc_per_rank(n, p, m) > libsci_per_rank(n, p), "p={p}");
        }
    }

    #[test]
    fn candmc_crossover_is_far_out() {
        // Paper: crossover only beyond ~450k ranks for N=16384 (Fig. 7).
        // With only the *published leading terms* (the lower-order
        // constants of CANDMC's model are not public) the crossover lands
        // at P = (5)^6 ≈ 15.6k — still an order of magnitude beyond every
        // measured configuration (P ≤ 1024), which is the qualitative
        // claim. EXPERIMENTS.md records the quantitative gap.
        let x = candmc_crossover_p(16384.0);
        assert!(x > 4096.0, "crossover too early: {x}");
        assert!(x.is_finite(), "crossover must exist");
    }

    #[test]
    fn weak_scaling_2p5d_flat_2d_grows() {
        // Fig 6b: with N = 3200 * P^(1/3), COnfLUX per-rank volume is
        // constant while 2D grows like P^(1/6)
        let per = |p: f64| {
            let n = 3200.0 * p.powf(1.0 / 3.0);
            let m = fig6_memory(n, p);
            (conflux_per_rank(n, p, m), libsci_per_rank(n, p))
        };
        let (c64, l64) = per(64.0);
        let (c4096, l4096) = per(4096.0);
        assert!(
            (c4096 / c64 - 1.0).abs() < 0.3,
            "2.5D should stay flat: {c64} -> {c4096}"
        );
        assert!(l4096 / l64 > 1.4, "2D should grow: {l64} -> {l4096}");
    }
}
