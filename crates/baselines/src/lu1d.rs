//! Genuinely distributed 1D LU on the real-threads backend.
//!
//! Unlike the orchestrated simulators (which keep numerics on a global view
//! and count ownership-accurate volumes), this implementation is truly SPMD:
//! every rank is an OS thread holding **only its own rows** (1D block-row
//! cyclic), and all coordination happens through real messages over
//! crossbeam channels — pivot selection by allreduce-max, pivot-row
//! broadcast, nothing shared.
//!
//! It serves three purposes: (a) evidence that the workspace's algorithms
//! run under genuine concurrency with private memories; (b) a 1D comparison
//! point whose per-rank volume is `Θ(N²)` — worse than 2D's `N²/√P`,
//! bracketing the decomposition hierarchy the paper discusses; (c) a
//! volume cross-check for the counted backends.

use denselin::blockcyclic::BlockCyclic1D;
use denselin::matrix::Matrix;
use simnet::stats::CommStats;
use simnet::threaded::run_spmd;

/// Result of the threaded 1D LU.
pub struct Lu1dRun {
    /// Packed factors with permutation (gathered from the rank threads).
    pub factors: denselin::lu::LuFactorization,
    /// Measured communication (real messages).
    pub stats: CommStats,
}

/// Factor `a` with partial pivoting on `p` rank threads, rows distributed
/// block-cyclically with block size `rb`.
pub fn factorize_1d_threaded(a: &Matrix, p: usize, rb: usize) -> Lu1dRun {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square matrices only");
    assert!(p >= 1);
    let map = BlockCyclic1D::new(n, rb, p);
    let all: Vec<usize> = (0..p).collect();

    let (mut results, stats) = run_spmd(p, |ctx| {
        // --- local storage: my rows only ---
        let my_globals: Vec<usize> = map.owned_indices(ctx.rank).collect();
        let mut local = a.gather_rows(&my_globals);
        let local_of = |g: usize| map.local_index(g);

        let mut perm = Vec::with_capacity(n);
        let mut pivoted = vec![false; n];
        for k in 0..n {
            // --- distributed pivot search: my best |A(i,k)| among my
            // unpivoted rows, allreduce-max over (value, owner, global) ---
            let mut best = (-1.0_f64, ctx.rank as f64, -1.0_f64);
            for (li, &g) in my_globals.iter().enumerate() {
                if pivoted[g] {
                    continue;
                }
                let v = local[(li, k)].abs();
                if v > best.0 {
                    best = (v, ctx.rank as f64, g as f64);
                }
            }
            // allreduce by max on the first component (tree reduce +
            // broadcast: correct for any rank count, unlike a butterfly)
            let winner = ctx.allreduce_with(
                &all,
                vec![best.0, best.1, best.2],
                (2 * k) as u64,
                "pivot-allreduce",
                |x, y| if x[0] >= y[0] { x } else { y },
            );
            let piv_owner = winner[1] as usize;
            let piv_global = winner[2] as f64 as usize;
            assert!(winner[0] > 0.0, "singular matrix in 1D LU");
            perm.push(piv_global);
            pivoted[piv_global] = true;

            // --- pivot row broadcast (row masking: no swaps, 1D rows stay
            // home; only the pivot row's trailing segment moves) ---
            let row_data = if ctx.rank == piv_owner {
                Some(local.row(local_of(piv_global))[k..].to_vec())
            } else {
                None
            };
            let pivot_row = ctx.broadcast(
                &all,
                piv_owner,
                row_data,
                (2 * k + 1) as u64,
                "pivot-row-bcast",
            );
            let pivot = pivot_row[0];

            // --- local elimination of my unpivoted rows ---
            for (li, &g) in my_globals.iter().enumerate() {
                if pivoted[g] {
                    continue;
                }
                let lik = local[(li, k)] / pivot;
                local[(li, k)] = lik;
                let row = local.row_mut(li);
                for (j, &prj) in (k + 1..n).zip(&pivot_row[1..]) {
                    row[j] -= lik * prj;
                }
            }
            // the pivot owner records U row values implicitly (they are in
            // `local` already, untouched from here on)
        }
        (my_globals, local, perm)
    });

    // --- gather the distributed factors into packed L\U form ---
    let (_, _, perm) = &results[0];
    let perm = perm.clone();
    let mut lu = Matrix::zeros(n, n);
    for (my_globals, local, _) in results.drain(..) {
        for (li, &g) in my_globals.iter().enumerate() {
            // row g of the packed factor goes to its elimination position
            let pos = perm.iter().position(|&x| x == g).unwrap();
            // columns < pos hold L multipliers at the *elimination step*
            // they were produced; columns >= pos hold U. In this row-masked
            // scheme `local` rows are exactly the packed rows in original
            // coordinates; reorder rows by elimination position:
            lu.row_mut(pos).copy_from_slice(local.row(li));
        }
    }
    // Columns were eliminated in order k = 0..n with global column indices,
    // but packed L\U wants column j of L under the diagonal of position
    // space. Since pivoting was by rows only (columns never permuted), the
    // packed matrix in position space is exactly `lu` as built.
    let factors = denselin::lu::LuFactorization {
        lu,
        sign: denselin::lu::permutation_sign(&perm),
        perm,
    };
    Lu1dRun { factors, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn threaded_1d_matches_serial_pivoting() {
        let mut rng = StdRng::seed_from_u64(80);
        for (n, p, rb) in [(16, 2, 2), (24, 4, 3), (32, 4, 4), (20, 3, 2)] {
            let a = Matrix::random(&mut rng, n, n);
            let run = factorize_1d_threaded(&a, p, rb);
            let reference = denselin::lu::lu_unblocked(&a).unwrap();
            assert_eq!(run.factors.perm, reference.perm, "n={n} p={p}");
            let res = run.factors.residual(&a);
            assert!(res < 1e-10, "n={n} p={p}: residual {res}");
        }
    }

    #[test]
    fn single_rank_degenerates_to_serial() {
        let mut rng = StdRng::seed_from_u64(81);
        let a = Matrix::random(&mut rng, 12, 12);
        let run = factorize_1d_threaded(&a, 1, 4);
        assert!(run.factors.residual(&a) < 1e-12);
        // a single rank sends nothing
        assert_eq!(run.stats.total_sent(), 0);
    }

    #[test]
    fn volume_scales_like_n_squared() {
        // pivot-row broadcasts dominate: sum_k (n-k)*(p-1) ~ n^2(p-1)/2
        let mut rng = StdRng::seed_from_u64(82);
        let n = 48;
        let p = 4;
        let a = Matrix::random(&mut rng, n, n);
        let run = factorize_1d_threaded(&a, p, 4);
        let bcast = run.stats.sent_in_phase("pivot-row-bcast");
        let expect = (n * n / 2 * (p - 1)) as f64;
        let ratio = bcast as f64 / expect;
        assert!(
            (0.7..1.5).contains(&ratio),
            "bcast volume {bcast} vs ~{expect}"
        );
    }

    #[test]
    fn solves_systems() {
        let mut rng = StdRng::seed_from_u64(83);
        let n = 24;
        let a = Matrix::random_diagonally_dominant(&mut rng, n);
        let x = Matrix::random(&mut rng, n, 2);
        let b = a.matmul(&x);
        let run = factorize_1d_threaded(&a, 3, 4);
        assert!(run.factors.solve(&b).allclose(&x, 1e-8));
    }
}
