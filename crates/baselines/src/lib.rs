//! `baselines` — the comparison LU implementations of Section 8:
//!
//! * [`lu2d`] — ScaLAPACK-style 2D block-cyclic LU with partial pivoting,
//!   in two flavours ([`lu2d::Variant::LibSci`], [`lu2d::Variant::Slate`]),
//! * [`candmc`] — CANDMC-style 2.5D communication-avoiding LU with
//!   tournament pivoting and physical row swapping,
//! * [`models`] — the analytic Table 2 cost models of all four libraries.
//!
//! All run on the same `simnet` simulated machine as COnfLUX and count
//! communication the same way, so the comparisons of Figures 6–7 are
//! apples-to-apples.
//!
//! # Example
//!
//! Count the 2D partial-pivoting baseline's traffic (Phantom mode) and
//! observe the per-column pivot allreduce the paper's Section 7.3 latency
//! argument targets:
//!
//! ```
//! use baselines::lu2d::{factorize_2d, Lu2dConfig, Variant};
//! use conflux::Mode;
//!
//! let cfg = Lu2dConfig::for_ranks(64, 4, Variant::LibSci, Mode::Phantom);
//! let run = factorize_2d(&cfg, None);
//! assert!(run.stats.sent_in_phase("panel:pivot-allreduce") > 0);
//! // one pivot allreduce per matrix column: an O(N) latency chain
//! assert!(run.stats.messages_in_phase("panel:pivot-allreduce") as usize >= 64);
//! ```

#![warn(missing_docs)]

pub mod candmc;
pub mod lu2d;
pub mod models;

pub use candmc::{factorize_candmc, CandmcConfig, CandmcRun};
pub use lu2d::{factorize_2d, Lu2dConfig, Lu2dRun, Variant};

pub mod lu1d;
pub use lu1d::{factorize_1d_threaded, Lu1dRun};

pub mod lu2d_threaded;
pub use lu2d_threaded::{factorize_2d_threaded, Lu2dThreadedRun};
