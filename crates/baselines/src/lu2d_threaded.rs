//! Truly SPMD 2D block-cyclic LU with partial pivoting on the real-threads
//! backend — a thread-per-rank pdgetrf.
//!
//! Each rank thread owns exactly its block-cyclic shard of the matrix
//! (`BlockCyclic2D`); pivot search is an allreduce-max over the panel's
//! process column, row swaps move only the two owners' row fragments,
//! the L panel is broadcast along process rows and the U panel along
//! process columns — the same pattern [`crate::lu2d`] *counts*, here
//! *executed* with real messages and verified against serial LU.
//!
//! Unblocked panels (`nb` applies to the data layout, elimination is
//! column-by-column) keep the message protocol simple; the communication
//! volume is the same Θ(N²/√P) class.

use denselin::blockcyclic::BlockCyclic2D;
use denselin::lu::{permutation_sign, LuFactorization};
use denselin::matrix::Matrix;
use simnet::stats::CommStats;
use simnet::threaded::run_spmd;
use simnet::topology::Grid3D;

/// Result of the threaded 2D LU.
pub struct Lu2dThreadedRun {
    /// Packed factors + permutation, gathered from the rank shards.
    pub factors: LuFactorization,
    /// Real-message communication record.
    pub stats: CommStats,
}

/// Factor `a` on a `pr x pc` grid of rank threads with `nb x nb`
/// block-cyclic layout.
pub fn factorize_2d_threaded(a: &Matrix, pr: usize, pc: usize, nb: usize) -> Lu2dThreadedRun {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square matrices only");
    let p = pr * pc;
    let topo = Grid3D::new(pr, pc, 1);
    let map = BlockCyclic2D::new(n, n, nb, nb, pr, pc);

    let (mut results, stats) = run_spmd(p, |ctx| {
        let me = topo.coord_of(ctx.rank);
        let (my_i, my_j) = (me.i, me.j);
        // --- local shard: my rows x my cols ---
        let my_rows: Vec<usize> = map.rows.owned_indices(my_i).collect();
        let my_cols: Vec<usize> = map.cols.owned_indices(my_j).collect();
        let mut local = Matrix::from_fn(my_rows.len(), my_cols.len(), |li, lj| {
            a[(my_rows[li], my_cols[lj])]
        });
        let lrow = |g: usize| map.rows.local_index(g);
        let lcol = |g: usize| map.cols.local_index(g);

        let col_group = |j: usize| topo.column_group(j, 0);
        let row_group = |i: usize| topo.row_group(i, 0);

        let mut swaps: Vec<(usize, usize)> = Vec::with_capacity(n);

        for k in 0..n {
            let owner_jk = map.cols.owner(k); // process column of column k
            let owner_ik = map.rows.owner(k); // process row of row k
            let in_panel_col = my_j == owner_jk;

            // ---- pivot search over column k (rows k..n) ----
            let piv = if in_panel_col {
                let mut best = (-1.0_f64, k as f64);
                for (li, &g) in my_rows.iter().enumerate() {
                    if g >= k {
                        let v = local[(li, lcol(k))].abs();
                        if v > best.0 {
                            best = (v, g as f64);
                        }
                    }
                }
                let group = col_group(my_j);
                let win = ctx.allreduce_with(
                    &group,
                    vec![best.0, best.1],
                    (4 * k) as u64,
                    "pivot-allreduce",
                    |x, y| {
                        if x[0] >= y[0] {
                            x
                        } else {
                            y
                        }
                    },
                );
                assert!(win[0] > 0.0, "singular matrix");
                win[1] as usize
            } else {
                0 // learned below
            };
            // broadcast the pivot row index to everyone (pivot owner's
            // process column knows it; root = (0, owner_jk))
            let root = topo.rank_of(0, owner_jk, 0);
            let all: Vec<usize> = (0..p).collect();
            let data = (ctx.rank == root).then(|| vec![piv as f64]);
            let piv =
                ctx.broadcast(&all, root, data, (4 * k + 1) as u64, "pivot-bcast")[0] as usize;
            swaps.push((k, piv));

            // ---- swap rows k <-> piv across the full width ----
            if piv != k {
                let oa = map.rows.owner(k);
                let ob = map.rows.owner(piv);
                if oa == ob {
                    if my_i == oa {
                        // local swap of my fragments
                        let (ra, rb) = (lrow(k), lrow(piv));
                        for lj in 0..my_cols.len() {
                            let t = local[(ra, lj)];
                            local[(ra, lj)] = local[(rb, lj)];
                            local[(rb, lj)] = t;
                        }
                    }
                } else if my_i == oa || my_i == ob {
                    // exchange fragments with the partner in my process col
                    let (mine, partner_row) = if my_i == oa {
                        (lrow(k), ob)
                    } else {
                        (lrow(piv), oa)
                    };
                    let partner = topo.rank_of(partner_row, my_j, 0);
                    let out: Vec<f64> = (0..my_cols.len()).map(|lj| local[(mine, lj)]).collect();
                    ctx.send(partner, (4 * k + 2) as u64, out, "laswp");
                    let inc = ctx.recv(partner, (4 * k + 2) as u64);
                    for (lj, v) in inc.into_iter().enumerate() {
                        local[(mine, lj)] = v;
                    }
                }
            }

            // ---- scale column k below the diagonal + broadcast pivot row ----
            // the pivot value and the pivot row's trailing fragment live on
            // process row owner_ik; broadcast them down each process column
            let my_trailing: Vec<usize> = my_cols.iter().copied().filter(|&c| c >= k).collect();
            let frag = if my_i == owner_ik {
                Some(
                    my_trailing
                        .iter()
                        .map(|&c| local[(lrow(k), lcol(c))])
                        .collect::<Vec<f64>>(),
                )
            } else {
                None
            };
            let group = col_group(my_j);
            let root = topo.rank_of(owner_ik, my_j, 0);
            let pivot_row = ctx.broadcast(&group, root, frag, (4 * k + 3) as u64, "u-bcast");

            // the pivot value itself comes from the owner of column k
            let pivot_val = if my_trailing.first() == Some(&k) {
                pivot_row[0]
            } else {
                // my process column does not own column k; fetch not needed:
                // only panel-column ranks scale L
                f64::NAN
            };

            // scale my rows below k in column k (only the panel column)
            if in_panel_col {
                debug_assert!(!pivot_val.is_nan());
                for (li, &g) in my_rows.iter().enumerate() {
                    if g > k {
                        local[(li, lcol(k))] /= pivot_val;
                    }
                }
            }

            // ---- broadcast the L column fragment along process rows ----
            let lfrag = if in_panel_col {
                Some(
                    my_rows
                        .iter()
                        .enumerate()
                        .filter(|(_, &g)| g > k)
                        .map(|(li, _)| local[(li, lcol(k))])
                        .collect::<Vec<f64>>(),
                )
            } else {
                None
            };
            let group = row_group(my_i);
            let root = topo.rank_of(my_i, owner_jk, 0);
            let lcol_frag = ctx.broadcast(
                &group,
                root,
                lfrag,
                (4 * k + 2) as u64 + (1 << 30),
                "l-bcast",
            );

            // ---- rank-1 trailing update of my shard ----
            // my rows > k, my cols > k
            let below: Vec<usize> = my_rows
                .iter()
                .enumerate()
                .filter(|(_, &g)| g > k)
                .map(|(li, _)| li)
                .collect();
            let trailing_cols: Vec<usize> =
                my_trailing.iter().copied().filter(|&c| c > k).collect();
            // pivot_row holds values for my_trailing (starting at >= k);
            // index it by position
            let offset = my_trailing.len() - trailing_cols.len();
            for (bi, &li) in below.iter().enumerate() {
                let lik = lcol_frag[bi];
                // borrow the local row once and stream along it instead of
                // re-indexing (li, lj) per element
                let lrow = local.row_mut(li);
                for (ci, &c) in trailing_cols.iter().enumerate() {
                    lrow[lcol(c)] -= lik * pivot_row[offset + ci];
                }
            }
        }
        (my_rows, my_cols, local, swaps)
    });

    // --- gather shards into the packed global factor ---
    let mut lu = Matrix::zeros(n, n);
    let swaps = results[0].3.clone();
    for (my_rows, my_cols, local, _) in results.drain(..) {
        for (li, &g) in my_rows.iter().enumerate() {
            for (lj, &c) in my_cols.iter().enumerate() {
                lu[(g, c)] = local[(li, lj)];
            }
        }
    }
    // replay the swap sequence on the permutation bookkeeping
    let mut perm: Vec<usize> = (0..n).collect();
    for &(k, piv) in &swaps {
        perm.swap(k, piv);
    }
    let factors = LuFactorization {
        lu,
        sign: permutation_sign(&perm),
        perm,
    };
    Lu2dThreadedRun { factors, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_serial_partial_pivoting() {
        let mut rng = StdRng::seed_from_u64(120);
        for (n, pr, pc, nb) in [(12, 2, 2, 2), (20, 2, 2, 3), (24, 2, 3, 4), (16, 1, 4, 2)] {
            let a = Matrix::random(&mut rng, n, n);
            let run = factorize_2d_threaded(&a, pr, pc, nb);
            let reference = denselin::lu::lu_unblocked(&a).unwrap();
            assert_eq!(run.factors.perm, reference.perm, "n={n} {pr}x{pc}");
            assert!(
                run.factors.lu.allclose(&reference.lu, 1e-9),
                "n={n} {pr}x{pc}: factors differ"
            );
            assert!(run.factors.residual(&a) < 1e-10);
        }
    }

    #[test]
    fn single_rank_sends_nothing() {
        let mut rng = StdRng::seed_from_u64(121);
        let a = Matrix::random(&mut rng, 8, 8);
        let run = factorize_2d_threaded(&a, 1, 1, 2);
        assert!(run.factors.residual(&a) < 1e-12);
        assert_eq!(run.stats.total_sent(), 0);
    }

    #[test]
    fn volume_class_matches_orchestrated_2d() {
        // the threaded execution and the orchestrated counter live in the
        // same Θ(N²/√P) class: their totals agree within a small factor
        use crate::lu2d::{factorize_2d, Lu2dConfig, Variant};
        use conflux::tiles::Mode;
        let mut rng = StdRng::seed_from_u64(122);
        let n = 64;
        let a = Matrix::random(&mut rng, n, n);
        let run = factorize_2d_threaded(&a, 2, 2, 4);
        let mut cfg = Lu2dConfig::for_ranks(n, 4, Variant::LibSci, Mode::Phantom);
        cfg.nb = 4;
        let counted = factorize_2d(&cfg, None);
        let ratio = run.stats.total_sent() as f64 / counted.stats.total_sent() as f64;
        assert!(
            (0.3..3.0).contains(&ratio),
            "threaded {} vs counted {}: ratio {ratio}",
            run.stats.total_sent(),
            counted.stats.total_sent()
        );
    }

    #[test]
    fn solves_systems() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 18;
        let a = Matrix::random_diagonally_dominant(&mut rng, n);
        let x = Matrix::random(&mut rng, n, 2);
        let b = a.matmul(&x);
        let run = factorize_2d_threaded(&a, 2, 2, 3);
        assert!(run.factors.solve(&b).allclose(&x, 1e-8));
    }
}
