//! Chaos tests for the sharded cluster: scheduled shard crashes at every
//! fail-point, revival mid-traffic, and the ticket-preservation invariant
//! — every admitted request resolves to a success or a typed error, never
//! a hang, a drop, or a stale factor.
//!
//! Crash schedules are deterministic: each shard ticks a fail-point clock
//! at dequeue (1 tick), then pre-factor / post-factor on the cold path
//! (2 more), then pre-deliver (1 tick), and `FaultPlan::with_crash(shard,
//! step)` fires at the first fail-point reaching `step`. A cold solo
//! request on a one-worker shard therefore ticks steps 1-2-3-4; a warm
//! one ticks 1-2.

use denselin::{lu_blocked, Matrix};
use simnet::FaultPlan;
use solversrv::{serve_cluster, ClusterConfig, Fingerprint, HashRing, MatrixKind, SolveRequest};

fn dd_matrix(n: usize, seed: u64) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            n as f64 + 2.0 + seed as f64
        } else {
            0.5 / (1.0 + (i + 3 * j + seed as usize) as f64)
        }
    })
}

fn base_cfg(shards: usize, replicas: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        replicas,
        workers_per_shard: 1,
        panel: 8,
        ..ClusterConfig::default()
    }
}

/// The reference answer the cluster must reproduce bit-for-bit: the same
/// blocked LU, run directly.
fn direct_solve(a: &Matrix, b: &Matrix, panel: usize) -> Matrix {
    let f = lu_blocked(a, panel).unwrap();
    let mut x = Matrix::zeros(b.rows(), b.cols());
    f.solve_into(b, &mut x);
    x
}

#[test]
fn crash_during_factor_reroutes_and_refactors_cold() {
    let n = 16;
    let a = dd_matrix(n, 1);
    let b = Matrix::from_fn(n, 2, |i, j| (1 + i + j) as f64);
    let fp = Fingerprint::of(&a);
    let primary = HashRing::new(3).route(fp, 2)[0];
    // step 2 = the pre-factor fail-point of the first (cold) request
    let cfg = ClusterConfig {
        faults: FaultPlan::new(11).with_crash(primary, 2),
        ..base_cfg(3, 2)
    };
    let (resp, report) = serve_cluster(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b.clone())).unwrap()
    });
    assert!(resp.residual <= 1e-10);
    assert_eq!(
        resp.stats.failovers, 1,
        "the crash must re-route the ticket"
    );
    assert_ne!(resp.stats.shard, Some(primary), "served by the dead shard");
    assert_eq!(resp.stats.fingerprint, Some(fp), "stale-factor check");
    assert!(
        !resp.stats.cache_hit,
        "replica had no factor: cold re-factor"
    );
    assert_eq!(
        resp.x,
        direct_solve(&a, &b, 8),
        "answer must be bitwise exact"
    );
    assert_eq!(report.stats.crashes, 1);
    assert!(report.stats.accounted(), "{:?}", report.stats);
}

#[test]
fn crash_during_solve_discards_computed_answer_and_fails_over_warm() {
    let n = 16;
    let a = dd_matrix(n, 2);
    let b = Matrix::from_fn(n, 1, |i, _| 1.0 + i as f64);
    let fp = Fingerprint::of(&a);
    let primary = HashRing::new(2).route(fp, 2)[0];
    // warm-up consumes steps 1-4; the second request's pre-deliver
    // fail-point is step 6 — the answer is computed, then dies with the
    // shard before delivery
    let cfg = ClusterConfig {
        faults: FaultPlan::new(12).with_crash(primary, 6),
        ..base_cfg(2, 2)
    };
    let ((), report) = serve_cluster(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        let warm = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        assert_eq!(warm.stats.shard, Some(primary));
        let resp = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        assert_eq!(resp.stats.failovers, 1);
        assert_ne!(resp.stats.shard, Some(primary));
        assert!(
            resp.stats.cache_hit,
            "replication should have pre-warmed the surviving replica"
        );
        assert_eq!(resp.stats.fingerprint, Some(fp));
        assert_eq!(resp.x, direct_solve(&a, &b, 8));
    });
    assert_eq!(report.stats.crashes, 1);
    assert_eq!(report.stats.replicated_factors, 1);
    assert!(report.stats.accounted());
}

#[test]
fn crash_with_queued_coalesced_rhs_resolves_every_ticket() {
    let n = 16;
    let a = dd_matrix(n, 3);
    let fp = Fingerprint::of(&a);
    let primary = HashRing::new(3).route(fp, 2)[0];
    // step 3 = post-factor of the lead: the factor is complete but dies
    // before insertion, with the rider RHS still queued behind it
    let cfg = ClusterConfig {
        faults: FaultPlan::new(13).with_crash(primary, 3),
        ..base_cfg(3, 2)
    };
    let k = 6;
    let ((), report) = serve_cluster(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        let tickets: Vec<_> = (0..k)
            .map(|j| {
                let b = Matrix::from_fn(n, 1, |i, _| (i + j + 1) as f64);
                h.submit(SolveRequest::new(1, b)).unwrap()
            })
            .collect();
        for (j, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().expect("an admitted ticket must resolve Ok here");
            assert!(resp.residual <= 1e-10, "ticket {j}");
            assert_ne!(resp.stats.shard, Some(primary), "ticket {j}");
            assert_eq!(resp.stats.fingerprint, Some(fp), "ticket {j}");
            let b = Matrix::from_fn(n, 1, |i, _| (i + j + 1) as f64);
            assert_eq!(resp.x, direct_solve(&a, &b, 8), "ticket {j}");
        }
    });
    assert_eq!(report.stats.crashes, 1);
    assert_eq!(report.stats.service.completed, k as u64);
    assert!(
        report.stats.failovers >= 1,
        "at least the in-flight lead re-routes: {:?}",
        report.stats
    );
    assert!(report.stats.accounted());
}

#[test]
fn scheduled_revive_rebalances_and_primary_serves_warm() {
    let n = 16;
    let a = dd_matrix(n, 4);
    let b = Matrix::from_fn(n, 1, |i, _| 2.0 + i as f64);
    let fp = Fingerprint::of(&a);
    let primary = HashRing::new(3).route(fp, 2)[0];
    // crash at the first request's pre-factor step; the revive clock is
    // the cluster submission count, so the third submission brings the
    // primary back (rebalanced warm) before it is routed
    let cfg = ClusterConfig {
        faults: FaultPlan::new(14)
            .with_crash(primary, 2)
            .with_revive(primary, 3),
        ..base_cfg(3, 2)
    };
    let ((), report) = serve_cluster(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        let first = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        assert_eq!(first.stats.failovers, 1);
        let second = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        assert_ne!(second.stats.shard, Some(primary), "primary still down");
        let third = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        assert_eq!(
            third.stats.shard,
            Some(primary),
            "revived primary should reclaim its keyspace"
        );
        assert!(third.stats.cache_hit, "rebalance should have warmed it");
        assert_eq!(third.x, direct_solve(&a, &b, 8));
    });
    assert_eq!(report.stats.crashes, 1);
    assert_eq!(report.stats.revives, 1);
    assert!(report.stats.rebalanced_factors >= 1);
    assert!(report.stats.accounted());
}

#[test]
fn crash_step_sweep_never_loses_a_ticket() {
    // fire the crash at every fail-point step a short workload reaches;
    // whatever the step, every admitted ticket must resolve and the
    // accounting must balance
    let n = 12;
    for step in 1..=10 {
        let a = dd_matrix(n, 20 + step as u64);
        let fp = Fingerprint::of(&a);
        let primary = HashRing::new(3).route(fp, 2)[0];
        let cfg = ClusterConfig {
            faults: FaultPlan::new(100 + step as u64).with_crash(primary, step),
            ..base_cfg(3, 2)
        };
        let (ok, report) = serve_cluster(cfg, |h| {
            h.register_matrix(1, a.clone(), MatrixKind::General);
            let mut ok = 0u64;
            for j in 0..4 {
                let b = Matrix::from_fn(n, 1, |i, _| (i * (j + 1) + 1) as f64);
                let resp = h
                    .solve(SolveRequest::new(1, b.clone()))
                    .unwrap_or_else(|e| panic!("step {step} req {j}: {e}"));
                assert_eq!(resp.x, direct_solve(&a, &b, 8), "step {step} req {j}");
                ok += 1;
            }
            ok
        });
        assert_eq!(ok, 4, "step {step}");
        assert_eq!(report.stats.service.completed, 4, "step {step}");
        assert!(report.stats.accounted(), "step {step}: {:?}", report.stats);
    }
}

#[test]
fn concurrent_clients_survive_kill_and_revive_churn() {
    let n = 16;
    let tenants = 5u64;
    let per_client = 20usize;
    let clients = 3usize;
    let cfg = base_cfg(4, 2);
    let matrices: Vec<Matrix> = (0..tenants).map(|t| dd_matrix(n, 40 + t)).collect();
    let ((), report) = serve_cluster(cfg, |h| {
        for (t, a) in matrices.iter().enumerate() {
            h.register_matrix(t as u64, a.clone(), MatrixKind::General);
        }
        std::thread::scope(|s| {
            for c in 0..clients {
                s.spawn(move || {
                    let policy = simnet::RetryPolicy::default();
                    for j in 0..per_client {
                        let t = ((c * per_client + j) as u64 * 7) % tenants;
                        let b = Matrix::from_fn(n, 1, |i, _| (i + c + j + 1) as f64);
                        let resp = solversrv::solve_with_retry_seeded(
                            h,
                            &SolveRequest::new(t, b),
                            &policy,
                            (c * per_client + j) as u64,
                        )
                        .unwrap_or_else(|e| panic!("client {c} req {j}: {e}"));
                        assert!(resp.residual <= 1e-10);
                    }
                });
            }
            // chaos alongside the clients: at most one shard down at a
            // time, so the r=2 replica set always has a live member
            s.spawn(|| {
                for round in 0..6 {
                    let victim = round % 4;
                    h.kill_shard(victim);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    h.revive_shard(victim);
                }
            });
        });
    });
    assert_eq!(
        report.stats.service.completed,
        (clients * per_client) as u64
    );
    assert!(report.stats.crashes >= 1);
    assert!(report.stats.accounted(), "{:?}", report.stats);
}

#[test]
fn reregistered_content_is_never_served_stale_across_failover() {
    // re-register the same id with different bytes, then crash the new
    // content's primary: the failed-over answer must carry the *new*
    // fingerprint and solve the new matrix
    let n = 12;
    let old = dd_matrix(n, 50);
    let new = dd_matrix(n, 51);
    let b = Matrix::from_fn(n, 1, |i, _| 1.0 + i as f64);
    let fp_new = Fingerprint::of(&new);
    let primary_new = HashRing::new(3).route(fp_new, 2)[0];
    let cfg = ClusterConfig {
        // warm `old` first (up to 4 victim steps if it shares the shard),
        // then kill the new content's primary mid-cold-factor; a large
        // step is consumed only if the victim actually reaches it
        faults: FaultPlan::new(15).with_crash(primary_new, 6),
        ..base_cfg(3, 2)
    };
    let ((), report) = serve_cluster(cfg, |h| {
        h.register_matrix(1, old.clone(), MatrixKind::General);
        let r_old = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        assert_eq!(r_old.stats.fingerprint, Some(Fingerprint::of(&old)));
        h.register_matrix(1, new.clone(), MatrixKind::General);
        let r_new = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        assert_eq!(
            r_new.stats.fingerprint,
            Some(fp_new),
            "stale factor served after re-registration"
        );
        assert_eq!(r_new.x, direct_solve(&new, &b, 8));
    });
    assert!(report.stats.accounted());
}
