//! Deterministic integration tests of the solve service: admission
//! control, batching, caching, deadlines, degradation and tracing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use denselin::{lu_blocked, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::RetryPolicy;
use solversrv::{serve, solve_with_retry, MatrixKind, ServiceConfig, SolveError, SolveRequest};

fn well_conditioned(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::random_diagonally_dominant(&mut rng, n)
}

fn spd(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = Matrix::random(&mut rng, n, n);
    let mut a = m.matmul(&m.transpose());
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

#[test]
fn basic_solve_roundtrip() {
    let n = 32;
    let a = well_conditioned(n, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let x_true = Matrix::random(&mut rng, n, 3);
    let b = a.matmul(&x_true);
    let (resp, report) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b.clone())).unwrap()
    });
    assert!(resp.residual <= 1e-10);
    assert!(resp.x.allclose(&x_true, 1e-7));
    assert_eq!(resp.x.shape(), b.shape());
    assert_eq!(resp.stats.kernel, "lu");
    assert!(!resp.stats.cache_hit, "first solve must be a miss");
    assert_eq!(report.stats.completed, 1);
    assert_eq!(report.stats.cache_misses, 1);
}

#[test]
fn second_solve_hits_cache() {
    let n = 24;
    let a = well_conditioned(n, 3);
    let b = Matrix::from_fn(n, 1, |i, _| 1.0 + i as f64);
    let ((r1, r2), report) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        let r1 = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        let r2 = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        (r1, r2)
    });
    assert!(!r1.stats.cache_hit);
    assert!(r2.stats.cache_hit);
    assert_eq!(r2.stats.factor_time, Duration::ZERO);
    // same factor, same kernel sequence: bitwise identical answers
    assert_eq!(r1.x.as_slice(), r2.x.as_slice());
    assert_eq!(report.stats.cache_hits, 1);
    assert_eq!(report.stats.cache_misses, 1);
}

#[test]
fn same_content_under_two_ids_shares_one_factor() {
    let n = 16;
    let a = well_conditioned(n, 4);
    let b = Matrix::from_fn(n, 1, |i, _| i as f64);
    let (_, report) = serve(ServiceConfig::default(), |h| {
        let fp1 = h.register_matrix(1, a.clone(), MatrixKind::General);
        let fp2 = h.register_matrix(2, a.clone(), MatrixKind::General);
        assert_eq!(fp1, fp2);
        h.solve(SolveRequest::new(1, b.clone())).unwrap();
        h.solve(SolveRequest::new(2, b.clone())).unwrap();
    });
    assert_eq!(report.stats.cache_misses, 1, "content-addressed dedup");
    assert_eq!(report.stats.cache_hits, 1);
}

#[test]
fn reregistering_different_content_never_serves_stale_factor() {
    let n = 16;
    let a1 = well_conditioned(n, 5);
    let a2 = well_conditioned(n, 6);
    let mut rng = StdRng::seed_from_u64(7);
    let x_true = Matrix::random(&mut rng, n, 1);
    let b2 = a2.matmul(&x_true);
    let (resp, _) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, a1.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b2.clone())).unwrap();
        // replace the data under the same id: the old factor must not be used
        h.register_matrix(1, a2.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b2.clone())).unwrap()
    });
    assert!(resp.residual <= 1e-10);
    assert!(resp.x.allclose(&x_true, 1e-7));
}

#[test]
fn typed_errors_for_bad_requests() {
    let ((), _) = serve(ServiceConfig::default(), |h| {
        let err = h
            .solve(SolveRequest::new(42, Matrix::zeros(4, 1)))
            .unwrap_err();
        assert_eq!(err, SolveError::UnknownMatrix { matrix_id: 42 });

        h.register_matrix(1, well_conditioned(8, 8), MatrixKind::General);
        let err = h
            .solve(SolveRequest::new(1, Matrix::zeros(5, 1)))
            .unwrap_err();
        assert_eq!(
            err,
            SolveError::ShapeMismatch {
                matrix_rows: 8,
                rhs_rows: 5
            }
        );
    });
}

#[test]
fn singular_matrix_fails_with_column() {
    let n = 8;
    let mut a = well_conditioned(n, 9);
    for j in 0..n {
        a[(3, j)] = a[(2, j)]; // duplicate row: exactly singular
    }
    let ((), report) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        let err = h
            .solve(SolveRequest::new(1, Matrix::zeros(n, 1)))
            .unwrap_err();
        assert!(matches!(err, SolveError::Singular { .. }), "{err:?}");
    });
    assert_eq!(report.stats.failed, 1);
    assert_eq!(report.stats.completed, 0);
}

#[test]
fn spd_matrices_take_the_cholesky_path() {
    let n = 24;
    let a = spd(n, 10);
    let b = Matrix::from_fn(n, 2, |i, j| (i + j) as f64);
    let (resp, _) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, a.clone(), MatrixKind::SymmetricPositiveDefinite);
        h.solve(SolveRequest::new(1, b.clone())).unwrap()
    });
    assert_eq!(resp.stats.kernel, "cholesky");
    assert!(resp.residual <= 1e-10);
}

#[test]
fn false_spd_tag_falls_back_to_lu() {
    let n = 16;
    let a = well_conditioned(n, 11); // not symmetric: Cholesky will fail
    let b = Matrix::from_fn(n, 1, |i, _| 1.0 + i as f64);
    let (resp, report) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, a.clone(), MatrixKind::SymmetricPositiveDefinite);
        h.solve(SolveRequest::new(1, b.clone())).unwrap()
    });
    assert_eq!(resp.stats.kernel, "lu");
    assert!(resp.residual <= 1e-10);
    assert_eq!(report.stats.spd_fallbacks, 1);
}

#[test]
fn deadline_expired_request_is_abandoned() {
    let n = 8;
    let a = well_conditioned(n, 12);
    let ((), report) = serve(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        |h| {
            h.register_matrix(1, a.clone(), MatrixKind::General);
            // an already-expired deadline: the worker must abandon it at
            // dequeue, whatever the queue timing was
            let req = SolveRequest::new(1, Matrix::zeros(n, 1)).with_deadline(Duration::ZERO);
            let err = h.solve(req).unwrap_err();
            assert!(
                matches!(err, SolveError::DeadlineExceeded { .. }),
                "{err:?}"
            );
        },
    );
    assert_eq!(report.stats.deadline_misses, 1);
}

#[test]
fn unreachable_tolerance_reports_history_not_wrong_answer() {
    let n = 24;
    let a = well_conditioned(n, 13);
    let b = Matrix::from_fn(n, 1, |i, _| 1.0 + i as f64);
    let ((), report) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        // tolerance 0.0 is unreachable for a general system: the service
        // must refine, fail loudly, and never return a silent wrong answer
        let err = h
            .solve(SolveRequest::new(1, b.clone()).with_tolerance(0.0))
            .unwrap_err();
        match err {
            SolveError::ToleranceNotMet {
                achieved,
                requested,
                ..
            } => {
                assert!(achieved > 0.0);
                assert_eq!(requested, 0.0);
            }
            other => panic!("expected ToleranceNotMet, got {other:?}"),
        }
    });
    assert_eq!(report.stats.failed, 1);
}

#[test]
fn loose_tolerance_refines_and_reports_sweeps() {
    // degrade-to-refinement path that *succeeds*: ask for a residual the
    // direct solve occasionally misses but one sweep reaches
    let n = 48;
    let mut rng = StdRng::seed_from_u64(14);
    let a = Matrix::random(&mut rng, n, n); // general, mildly conditioned
    let x_true = Matrix::random(&mut rng, n, 1);
    let b = a.matmul(&x_true);
    let (resp, _) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b.clone()).with_tolerance(1e-13))
            .unwrap()
    });
    assert!(resp.residual <= 1e-13);
    if resp.stats.refined {
        assert!(!resp.stats.refine_history.is_empty());
        let h = &resp.stats.refine_history;
        assert!(h.last().unwrap() <= h.first().unwrap());
    }
}

#[test]
fn overload_fails_fast_and_inflight_solves_stay_correct() {
    // tiny queue + slow-ish requests: force Overloaded rejections while
    // verifying every accepted request still meets its tolerance
    let n = 96;
    let a = well_conditioned(n, 15);
    let mut rng = StdRng::seed_from_u64(16);
    let x_true = Matrix::random(&mut rng, n, 1);
    let b = a.matmul(&x_true);
    let cfg = ServiceConfig {
        workers: 1,
        max_queue: 2,
        ..ServiceConfig::default()
    };
    let (outcomes, report) = serve(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        // prime the factor so submissions below race only on solves
        h.solve(SolveRequest::new(1, b.clone())).unwrap();
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        // burst far past the queue bound without waiting
        for _ in 0..64 {
            match h.submit(SolveRequest::new(1, b.clone())) {
                Ok(t) => tickets.push(t),
                Err(SolveError::Overloaded { .. }) => rejected += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        (responses, rejected)
    });
    let (responses, rejected) = outcomes;
    assert!(rejected > 0, "burst of 64 into a queue of 2 must overload");
    assert_eq!(report.stats.rejected_overloaded, rejected);
    for resp in responses {
        let resp = resp.expect("accepted requests must complete");
        assert!(resp.residual <= 1e-10, "in-flight solve broke tolerance");
        assert!(resp.x.allclose(&x_true, 1e-6));
    }
}

#[test]
fn deterministic_load_zero_dropped_requests_under_pressure() {
    // the ISSUE's load test: a small queue, many concurrent clients, and
    // the retry/backoff helper — every single request must eventually
    // complete (zero drops), even though admission control pushes back
    let n = 32;
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 50;
    let a = well_conditioned(n, 17);
    let mut rng = StdRng::seed_from_u64(18);
    let x_true = Matrix::random(&mut rng, n, 1);
    let b = a.matmul(&x_true);
    let cfg = ServiceConfig {
        workers: 2,
        max_queue: 4,
        ..ServiceConfig::default()
    };
    let completed = AtomicU64::new(0);
    let ((), report) = serve(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        let policy = RetryPolicy {
            max_retries: 10_000, // a load generator that refuses to drop
            ..RetryPolicy::default()
        };
        std::thread::scope(|s| {
            for _ in 0..CLIENTS {
                s.spawn(|| {
                    for _ in 0..PER_CLIENT {
                        let resp = solve_with_retry(h, &SolveRequest::new(1, b.clone()), &policy)
                            .expect("request dropped");
                        assert!(resp.residual <= 1e-10);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    });
    assert_eq!(
        completed.load(Ordering::Relaxed),
        (CLIENTS * PER_CLIENT) as u64
    );
    assert_eq!(report.stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(
        report.stats.submitted, report.stats.completed,
        "accepted and answered must balance"
    );
}

#[test]
fn concurrent_same_factor_requests_coalesce() {
    let n = 64;
    let a = well_conditioned(n, 19);
    let b = Matrix::from_fn(n, 1, |i, _| 1.0 + i as f64);
    let cfg = ServiceConfig {
        workers: 1, // one worker: queued requests pile up and must batch
        ..ServiceConfig::default()
    };
    let (max_batch_seen, report) = serve(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b.clone())).unwrap(); // warm the cache
        let tickets: Vec<_> = (0..12)
            .map(|_| h.submit(SolveRequest::new(1, b.clone())).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().unwrap().stats.batch_size)
            .max()
            .unwrap()
    });
    assert!(
        max_batch_seen > 1,
        "a backed-up single-worker queue must coalesce"
    );
    assert!(report.stats.batches < 13, "13 requests in fewer batches");
    assert_eq!(report.stats.max_batch, max_batch_seen);
}

#[test]
fn eviction_keeps_answers_correct() {
    // a cache that holds roughly one factor: alternating matrices evict
    // each other constantly, but answers must stay right
    let n = 24;
    let a1 = well_conditioned(n, 20);
    let a2 = well_conditioned(n, 21);
    let one_factor_bytes = {
        let f = lu_blocked(&a1, 8).unwrap();
        f.lu.len() * std::mem::size_of::<f64>() + f.perm.len() * std::mem::size_of::<usize>()
    };
    let cfg = ServiceConfig {
        cache_budget_bytes: one_factor_bytes + one_factor_bytes / 2,
        ..ServiceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(22);
    let x_true = Matrix::random(&mut rng, n, 1);
    let (b1, b2) = (a1.matmul(&x_true), a2.matmul(&x_true));
    let ((), report) = serve(cfg, |h| {
        h.register_matrix(1, a1.clone(), MatrixKind::General);
        h.register_matrix(2, a2.clone(), MatrixKind::General);
        for _ in 0..3 {
            let r1 = h.solve(SolveRequest::new(1, b1.clone())).unwrap();
            let r2 = h.solve(SolveRequest::new(2, b2.clone())).unwrap();
            assert!(r1.x.allclose(&x_true, 1e-7));
            assert!(r2.x.allclose(&x_true, 1e-7));
        }
    });
    assert!(
        report.stats.cache_evictions > 0,
        "budget must force evictions"
    );
    assert_eq!(report.stats.completed, 6);
    assert!(report.stats.cache_bytes <= one_factor_bytes + one_factor_bytes / 2);
}

#[test]
fn trace_records_request_phases() {
    let n = 32;
    let a = well_conditioned(n, 23);
    let b = Matrix::from_fn(n, 1, |i, _| i as f64);
    let cfg = ServiceConfig {
        trace: true,
        ..ServiceConfig::default()
    };
    let ((), report) = serve(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b.clone())).unwrap();
        h.solve(SolveRequest::new(1, b.clone())).unwrap();
    });
    let trace = report.trace.expect("tracing was on");
    let phases: Vec<&str> = trace.events.iter().map(|e| e.phase).collect();
    assert!(phases.contains(&"svc:queue"), "{phases:?}");
    assert!(phases.contains(&"svc:factor"), "{phases:?}");
    assert!(phases.contains(&"svc:solve"), "{phases:?}");
    // and the export is loadable chrome-trace JSON
    let json = trace.to_chrome_trace();
    assert!(json.contains("svc:solve"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn stats_snapshot_mid_flight() {
    let n = 16;
    let a = well_conditioned(n, 24);
    let b = Matrix::from_fn(n, 1, |i, _| i as f64);
    let (mid, report) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        h.solve(SolveRequest::new(1, b.clone())).unwrap();
        h.stats()
    });
    assert_eq!(mid.completed, 1);
    assert!(mid.elapsed_s <= report.stats.elapsed_s);
    assert!(report.stats.throughput_rps > 0.0);
    assert!(report.stats.p50_latency > Duration::ZERO);
    assert!(report.stats.p99_latency >= report.stats.p50_latency);
}

#[test]
fn distributed_route_factors_large_matrices() {
    use conflux::LuGrid;
    use solversrv::DistributedConfig;
    let n = 64;
    let a = well_conditioned(n, 25);
    let mut rng = StdRng::seed_from_u64(26);
    let x_true = Matrix::random(&mut rng, n, 1);
    let b = a.matmul(&x_true);
    let small = well_conditioned(8, 27); // below min_n: must stay local
    let b_small = Matrix::from_fn(8, 1, |i, _| 1.0 + i as f64);
    let cfg = ServiceConfig {
        distributed: Some(DistributedConfig {
            min_n: 32,
            tile: 8,
            grid: LuGrid::new(8, 2, 2),
        }),
        ..ServiceConfig::default()
    };
    let ((big, little), report) = serve(cfg, |h| {
        h.register_matrix(1, a.clone(), MatrixKind::General);
        h.register_matrix(2, small.clone(), MatrixKind::General);
        let big = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        let little = h.solve(SolveRequest::new(2, b_small.clone())).unwrap();
        (big, little)
    });
    assert!(
        big.stats.distributed_factor,
        "n=64 ≥ min_n must go distributed"
    );
    assert!(big.residual <= 1e-10);
    assert!(big.x.allclose(&x_true, 1e-7));
    assert!(!little.stats.distributed_factor, "n=8 < min_n stays local");
    assert_eq!(report.stats.distributed_factors, 1);
}
