//! End-to-end tests of the sparse (CG) kernel family through the service:
//! registration, setup caching and amortization, bitwise repeatability,
//! degradation by tolerance relaxation, and typed failures.

use std::time::Duration;

use denselin::Matrix;
use solversrv::{serve, MatrixKind, Preconditioner, ServiceConfig, SolveError, SolveRequest};
use sparselin::{spd_laplacian, CsrMatrix, SplitMix64};

fn rhs(n: usize, k: usize, seed: u64) -> Matrix {
    let mut r = SplitMix64::new(seed);
    Matrix::from_fn(n, k, |_, _| r.symmetric())
}

#[test]
fn sparse_solve_end_to_end() {
    let a = spd_laplacian(12, 11, 0.3);
    let n = a.rows();
    let b = rhs(n, 2, 7);
    let (resp, report) = serve(ServiceConfig::default(), |h| {
        h.register_sparse(1, a.clone(), Preconditioner::SymGs)
            .unwrap();
        h.solve(SolveRequest::new(1, b.clone()).with_tolerance(1e-9))
            .unwrap()
    });
    assert!(resp.residual <= 1e-9, "residual {}", resp.residual);
    assert_eq!(resp.stats.kernel, "cg");
    assert!(resp.stats.cg_iterations > 0);
    assert!(!resp.stats.cache_hit, "first solve must be a setup miss");
    assert_eq!(report.stats.completed, 1);
    // check A·x ≈ b independently of the service's own residual claim
    let mut ax = vec![0.0; n];
    for j in 0..b.cols() {
        let xcol: Vec<f64> = (0..n).map(|i| resp.x[(i, j)]).collect();
        sparselin::spmv(&a, &xcol, &mut ax).unwrap();
        for i in 0..n {
            assert!((ax[i] - b[(i, j)]).abs() < 1e-6, "col {j} row {i}");
        }
    }
}

#[test]
fn setup_cache_amortizes_and_hits_are_bitwise() {
    let a = spd_laplacian(10, 10, 0.2);
    let b = rhs(a.rows(), 1, 3);
    let ((first, second), report) = serve(ServiceConfig::default(), |h| {
        h.register_sparse(5, a.clone(), Preconditioner::SymGs)
            .unwrap();
        let first = h.solve(SolveRequest::new(5, b.clone())).unwrap();
        let second = h.solve(SolveRequest::new(5, b.clone())).unwrap();
        (first, second)
    });
    // miss pays the level-analysis setup; hit skips it entirely
    assert!(!first.stats.cache_hit);
    assert!(second.stats.cache_hit);
    assert!(first.stats.factor_time > Duration::ZERO);
    assert_eq!(second.stats.factor_time, Duration::ZERO);
    assert!(report.stats.cache_hits >= 1);
    assert!(report.stats.cache_bytes > 0, "setup bytes accounted");
    // identical request against the cached setup: bitwise identical answer
    assert_eq!(first.x.shape(), second.x.shape());
    for i in 0..first.x.rows() {
        assert_eq!(first.x[(i, 0)].to_bits(), second.x[(i, 0)].to_bits());
    }
}

#[test]
fn same_matrix_different_preconditioner_is_a_distinct_entry() {
    let a = spd_laplacian(8, 8, 0.5);
    let b = rhs(a.rows(), 1, 11);
    let (fps, _) = serve(ServiceConfig::default(), |h| {
        let fp_j = h
            .register_sparse(1, a.clone(), Preconditioner::Jacobi)
            .unwrap();
        let fp_g = h
            .register_sparse(2, a.clone(), Preconditioner::SymGs)
            .unwrap();
        h.solve(SolveRequest::new(1, b.clone())).unwrap();
        h.solve(SolveRequest::new(2, b.clone())).unwrap();
        (fp_j, fp_g)
    });
    assert_ne!(fps.0, fps.1, "preconditioner must be part of the cache key");
}

#[test]
fn relaxed_tolerance_degradation_is_flagged() {
    let a = spd_laplacian(9, 9, 0.1);
    let b = rhs(a.rows(), 1, 5);
    // unreachable tolerance (1e-30 is below attainable f64 precision), with
    // a relaxation window wide enough to accept the ~1e-16 CG floor: the
    // solve must come back degraded (refined=true) with the history attached
    let cfg = ServiceConfig {
        sparse_relax: 1e25, // relaxed bound: 1e-30 × 1e25 = 1e-5
        ..ServiceConfig::default()
    };
    let (resp, report) = serve(cfg, |h| {
        h.register_sparse(1, a.clone(), Preconditioner::Jacobi)
            .unwrap();
        h.solve(SolveRequest::new(1, b.clone()).with_tolerance(1e-30))
            .unwrap()
    });
    assert!(resp.stats.refined, "must be flagged as degraded");
    assert!(!resp.stats.refine_history.is_empty());
    assert!(resp.residual > 1e-30 && resp.residual < 1e-5);
    assert_eq!(report.stats.refined, 1);
}

#[test]
fn unrelaxed_miss_is_tolerance_not_met() {
    let a = spd_laplacian(9, 9, 0.1);
    let b = rhs(a.rows(), 1, 5);
    let cfg = ServiceConfig {
        sparse_relax: 1.0, // disable degradation
        ..ServiceConfig::default()
    };
    let (err, report) = serve(cfg, |h| {
        h.register_sparse(1, a.clone(), Preconditioner::Jacobi)
            .unwrap();
        h.solve(SolveRequest::new(1, b.clone()).with_tolerance(1e-30))
            .unwrap_err()
    });
    assert!(matches!(err, SolveError::ToleranceNotMet { .. }), "{err}");
    assert_eq!(report.stats.failed, 1);
}

#[test]
fn indefinite_sparse_matrix_fails_typed() {
    // -I is negative definite: CG detects pᵀAp ≤ 0 on the first step
    let neg = CsrMatrix::from_triplets(
        4,
        4,
        &[(0, 0, -1.0), (1, 1, -1.0), (2, 2, -1.0), (3, 3, -1.0)],
    )
    .unwrap();
    let (err, _) = serve(ServiceConfig::default(), |h| {
        h.register_sparse(1, neg.clone(), Preconditioner::None)
            .unwrap();
        h.solve(SolveRequest::new(
            1,
            Matrix::from_fn(4, 1, |i, _| 1.0 + i as f64),
        ))
        .unwrap_err()
    });
    assert!(
        matches!(err, SolveError::IndefiniteMatrix { iteration: 0 }),
        "{err}"
    );
    assert!(!err.is_retryable());
}

#[test]
fn zero_diagonal_setup_fails_as_singular() {
    // row 1 has no diagonal entry: Jacobi setup cannot invert D
    let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 0, 1.0), (2, 2, 2.0)]).unwrap();
    let (err, _) = serve(ServiceConfig::default(), |h| {
        h.register_sparse(1, a.clone(), Preconditioner::Jacobi)
            .unwrap();
        h.solve(SolveRequest::new(1, Matrix::zeros(3, 1)))
            .unwrap_err()
    });
    assert!(matches!(err, SolveError::Singular { column: 1 }), "{err}");
}

#[test]
fn sparse_registration_rejects_non_square() {
    let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
    let (res, _) = serve(ServiceConfig::default(), |h| {
        h.register_sparse(1, a.clone(), Preconditioner::None)
    });
    assert!(matches!(res, Err(SolveError::ShapeMismatch { .. })));
}

#[test]
fn dense_and_sparse_families_coexist() {
    let sparse = spd_laplacian(7, 7, 1.0);
    let n = sparse.rows();
    let dense = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            4.0
        } else {
            0.5 / (1.0 + (i + j) as f64)
        }
    });
    let b = rhs(n, 1, 9);
    let ((ds, sp), report) = serve(ServiceConfig::default(), |h| {
        h.register_matrix(1, dense.clone(), MatrixKind::General);
        h.register_sparse(2, sparse.clone(), Preconditioner::SymGs)
            .unwrap();
        let ds = h.solve(SolveRequest::new(1, b.clone())).unwrap();
        let sp = h.solve(SolveRequest::new(2, b.clone())).unwrap();
        (ds, sp)
    });
    assert_eq!(ds.stats.kernel, "lu");
    assert_eq!(sp.stats.kernel, "cg");
    assert!(ds.residual <= 1e-10 && sp.residual <= 1e-10);
    assert_eq!(report.stats.completed, 2);
    // both factor families live in the same byte-budgeted cache
    assert_eq!(report.stats.cache_entries, 2);
}

#[test]
fn sparse_batch_coalesces_on_shared_fingerprint() {
    let a = spd_laplacian(8, 9, 0.4);
    let n = a.rows();
    // single worker + a slow lead: riders pile up behind the same
    // fingerprint and coalesce into the lead's batch
    let cfg = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };
    let (resps, report) = serve(cfg, |h| {
        h.register_sparse(1, a.clone(), Preconditioner::Jacobi)
            .unwrap();
        // warm the setup so every submission below is a cache hit
        h.solve(SolveRequest::new(1, rhs(n, 1, 0))).unwrap();
        let tickets: Vec<_> = (0..6)
            .map(|s| {
                h.submit(SolveRequest::new(1, rhs(n, 1, 100 + s as u64)))
                    .unwrap()
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().unwrap())
            .collect::<Vec<_>>()
    });
    assert_eq!(resps.len(), 6);
    assert!(resps.iter().all(|r| r.residual <= 1e-10));
    assert!(resps.iter().all(|r| r.stats.cache_hit));
    assert!(
        resps.iter().any(|r| r.stats.batch_size > 1),
        "at least one batch should have coalesced"
    );
    assert_eq!(report.stats.completed, 7);
}
