//! Property tests pinning the service's two numerical contracts:
//!
//! * a cache-hit solve is **bitwise identical** to a fresh-factor solve
//!   (the cache may never change an answer, not even in the last ulp),
//! * a batched multi-RHS solve matches solving each column separately.

use denselin::{lu_blocked, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use solversrv::{serve, MatrixKind, ServiceConfig, SolveRequest};

fn system(n: usize, seed: u64, k: usize) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::random_diagonally_dominant(&mut rng, n);
    let b = Matrix::random(&mut rng, n, k);
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cache_hit_solve_is_bitwise_identical_to_fresh(
        n in 4usize..48,
        seed in 0u64..1_000,
        k in 1usize..4,
    ) {
        let (a, b) = system(n, seed, k);
        let ((miss, hit), _) = serve(ServiceConfig::default(), |h| {
            h.register_matrix(1, a.clone(), MatrixKind::General);
            let miss = h.solve(SolveRequest::new(1, b.clone())).unwrap();
            let hit = h.solve(SolveRequest::new(1, b.clone())).unwrap();
            (miss, hit)
        });
        prop_assert!(!miss.stats.cache_hit);
        prop_assert!(hit.stats.cache_hit);
        prop_assert_eq!(miss.x.as_slice(), hit.x.as_slice());

        // and both match the same factorization driven directly, outside
        // the service (panel width must match the service's)
        let f = lu_blocked(&a, ServiceConfig::default().panel.min(n)).unwrap();
        let direct = f.solve(&b);
        prop_assert_eq!(direct.as_slice(), hit.x.as_slice());
    }

    #[test]
    fn batched_multi_rhs_matches_per_column_solves(
        n in 4usize..40,
        seed in 0u64..1_000,
        k in 2usize..6,
    ) {
        let (a, b) = system(n, seed, k);
        let cfg = ServiceConfig { workers: 1, ..ServiceConfig::default() };
        let (results, _) = serve(cfg, |h| {
            h.register_matrix(1, a.clone(), MatrixKind::General);
            h.solve(SolveRequest::new(1, b.clone())).unwrap(); // warm factor
            // submit every column while the single worker is busy, so the
            // service is free to coalesce them into one batch
            let tickets: Vec<_> = (0..k)
                .map(|j| h.submit(SolveRequest::new(1, b.block(0, j, n, 1))).unwrap())
                .collect();
            let per_col: Vec<_> = tickets
                .into_iter()
                .map(|t| t.wait().unwrap())
                .collect();
            let joint = h.solve(SolveRequest::new(1, b.clone())).unwrap();
            (per_col, joint)
        });
        let (per_col, joint) = results;
        for (j, resp) in per_col.iter().enumerate() {
            prop_assert!(resp.residual <= 1e-10);
            let col = joint.x.block(0, j, n, 1);
            // identical factor, identical triangular kernels; only the
            // batch width differs, which must not move the answer beyond
            // roundoff reassociation in the blocked update
            let diff = col.sub(&resp.x).max_norm();
            let scale = resp.x.max_norm().max(1.0);
            prop_assert!(diff <= 1e-12 * scale, "col {j} diff {diff:.3e}");
        }
    }

    #[test]
    fn rejected_requests_leave_no_orphan_state(
        n in 4usize..24,
        seed in 0u64..1_000,
    ) {
        let (a, b) = system(n, seed, 1);
        let cfg = ServiceConfig { workers: 1, max_queue: 1, ..ServiceConfig::default() };
        let ((), report) = serve(cfg, |h| {
            h.register_matrix(1, a.clone(), MatrixKind::General);
            let mut tickets = Vec::new();
            for _ in 0..16 {
                if let Ok(t) = h.submit(SolveRequest::new(1, b.clone())) {
                    tickets.push(t);
                }
            }
            for t in tickets {
                t.wait().unwrap();
            }
        });
        prop_assert_eq!(
            report.stats.submitted,
            report.stats.completed,
            "every accepted request answered exactly once"
        );
        prop_assert_eq!(report.stats.failed, 0);
    }
}
