//! Consistent-hash routing of matrix fingerprints onto shards.
//!
//! Each shard owns `VNODES` points on a `u64` ring; a fingerprint routes
//! to the first `replicas` *distinct* shards clockwise from its key. The
//! properties the cluster leans on:
//!
//! * **Determinism** — routing is a pure function of `(shards, fp)`, so
//!   every submitter, failover path and rebalance pass computes the same
//!   preference order without coordination.
//! * **Stability** — with virtual nodes, adding or removing one shard
//!   moves only `≈ 1/shards` of the keyspace; the rebalance-on-revive
//!   pass therefore copies few factors.
//! * **Spread** — vnode positions are splitmix64-scrambled, so shard
//!   loads are balanced to within small factors even for few shards.

use crate::fingerprint::Fingerprint;

/// Virtual nodes per shard. 64 keeps the per-shard keyspace share within
/// ~±25% of uniform while the ring stays tiny (a few KiB).
const VNODES: usize = 64;

/// Fixed salt separating ring-point hashing from everything else that
/// splitmixes in this workspace.
const SALT_RING: u64 = 0x9e37_79b9_7f4a_7c15;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The ring: sorted `(position, shard)` points.
#[derive(Clone, Debug)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a cluster needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                let pos = splitmix(SALT_RING ^ ((shard as u64) << 32) ^ vnode as u64);
                points.push((pos, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The ring key of a fingerprint: its content hash re-scrambled with
    /// the shape, so matrices differing only in dimensions still spread.
    pub fn key_of(fp: Fingerprint) -> u64 {
        splitmix(fp.hash ^ fp.rows.rotate_left(32) ^ fp.cols.rotate_left(48))
    }

    /// The preference order for `fp`: up to `replicas` distinct shards,
    /// clockwise from the fingerprint's key. Index 0 is the *primary*;
    /// the rest are the replica set. `replicas` is clamped to the shard
    /// count.
    pub fn route(&self, fp: Fingerprint, replicas: usize) -> Vec<usize> {
        let want = replicas.clamp(1, self.shards);
        let key = Self::key_of(fp);
        let start = self.points.partition_point(|&(pos, _)| pos < key);
        let mut out = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use denselin::Matrix;

    fn fp(seed: u64) -> Fingerprint {
        Fingerprint {
            rows: 8 + (seed % 5),
            cols: 8 + (seed % 5),
            hash: splitmix(seed),
        }
    }

    #[test]
    fn routing_is_deterministic_and_distinct() {
        let ring = HashRing::new(5);
        for s in 0..200 {
            let f = fp(s);
            let r1 = ring.route(f, 3);
            let r2 = HashRing::new(5).route(f, 3);
            assert_eq!(r1, r2, "route must be a pure function of (shards, fp)");
            assert_eq!(r1.len(), 3);
            let mut sorted = r1.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replica set has a duplicate: {r1:?}");
            assert!(r1.iter().all(|&s| s < 5));
        }
    }

    #[test]
    fn replicas_clamp_to_shard_count() {
        let ring = HashRing::new(2);
        assert_eq!(ring.route(fp(1), 7).len(), 2);
        assert_eq!(ring.route(fp(1), 0).len(), 1);
        let solo = HashRing::new(1);
        assert_eq!(solo.route(fp(3), 2), vec![0]);
    }

    #[test]
    fn primaries_are_reasonably_balanced() {
        let shards = 4;
        let ring = HashRing::new(shards);
        let mut counts = vec![0usize; shards];
        let trials = 2000;
        for s in 0..trials {
            counts[ring.route(fp(s as u64), 2)[0]] += 1;
        }
        let ideal = trials / shards;
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 2 && c < ideal * 2,
                "shard {shard} owns {c} of {trials} keys (ideal {ideal})"
            );
        }
    }

    #[test]
    fn real_fingerprints_route_consistently() {
        let ring = HashRing::new(3);
        let a = Matrix::from_fn(12, 12, |i, j| if i == j { 4.0 } else { 0.1 * j as f64 });
        let f = Fingerprint::of(&a);
        let route = ring.route(f, 2);
        // the same content always lands on the same primary
        assert_eq!(route, ring.route(Fingerprint::of(&a.clone()), 2));
        assert_ne!(route[0], route[1]);
    }
}
