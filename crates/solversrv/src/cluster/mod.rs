//! Sharded, replicated serving with crash-tolerant failover.
//!
//! [`serve_cluster`] runs `shards` independent shard services — each with
//! its own bounded queue, factor cache and worker pool — behind one
//! [`ClusterHandle`]. A consistent-hash ring ([`ring::HashRing`]) maps
//! every matrix fingerprint to a preference order of `replicas` distinct
//! shards; requests are admitted at the first live replica with queue
//! room, and hot factors are copied to the rest of the replica set at
//! insert time so a cache-warm shard crash degrades to a replica hit, not
//! a re-factorization.
//!
//! **Failover protocol.** A crash (scheduled through
//! [`simnet::FaultPlan`] fail-points, or [`ClusterHandle::kill_shard`])
//! atomically, under the shard lock: marks the shard dead, bumps its
//! *epoch*, wipes its cache and single-flight set, and takes every queued
//! request. The taken orphans are re-enqueued at the next live replica
//! with `failovers + 1` — admission is bypassed because the ticket was
//! already accepted; admitted work is never silently dropped. Workers
//! that were mid-request re-check the shard epoch after every compute
//! step and before delivery: on a mismatch they discard what they
//! computed (the shard's memory died with it) and fail their own batch
//! over themselves. A request whose entire replica set is dead resolves
//! to the typed [`SolveError::NoLiveReplica`] — it never hangs.
//!
//! **Staleness.** Factor-cache keys are content fingerprints and every
//! response echoes the fingerprint it was solved under
//! ([`RequestStats::fingerprint`]), so a failed-over request can prove it
//! was answered against exactly the bytes its tenant registered — the
//! verifier's `cluster-zero-stale` oracle checks this.
//!
//! **Load shedding.** Under pressure (total queued / live capacity) the
//! cluster degrades in tiers before rejecting — see [`ShedPolicy`].
//!
//! **Revival.** [`simnet::ReviveEvent`]s (consumed against a cluster-wide
//! submission clock) or [`ClusterHandle::revive_shard`] bring a shard
//! back empty; a rebalance pass then copies factors whose ring *primary*
//! is the revived shard from the replicas that kept them warm.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use denselin::gemm::gemm_auto;
use denselin::Matrix;
use simnet::{FaultPlan, ReviveEvent};

use crate::api::{MatrixKind, RequestStats, SolveError, SolveRequest, SolveResponse};
use crate::cache::{CachedFactor, FactorCache};
use crate::exec::{self, Registered, Slot};
use crate::fingerprint::Fingerprint;
use crate::service::{DistributedConfig, Ticket};
use crate::stats::{ClusterStats, Collector, ShardSnapshot};

pub mod ring;

pub use ring::HashRing;

/// Pressure thresholds (fraction of live queue capacity occupied) at
/// which the cluster sheds work, cheapest degradation first.
///
/// * at [`refine_at`](ShedPolicy::refine_at) — new requests skip iterative
///   refinement; a direct solve that misses its tolerance returns
///   [`SolveError::ToleranceNotMet`] with zero sweeps instead of burning
///   worker time polishing,
/// * at [`cold_miss_at`](ShedPolicy::cold_miss_at) — requests that would
///   force a cold `O(n³)` factorization are rejected with
///   [`SolveError::ShedColdMiss`]; cache hits still flow,
/// * at [`reject_at`](ShedPolicy::reject_at) — everything new is rejected
///   with [`SolveError::Overloaded`].
#[derive(Clone, Copy, Debug)]
pub struct ShedPolicy {
    /// Pressure at which refinement is shed.
    pub refine_at: f64,
    /// Pressure at which cold-miss factorizations are shed.
    pub cold_miss_at: f64,
    /// Pressure at which all new work is rejected.
    pub reject_at: f64,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            refine_at: 0.50,
            cold_miss_at: 0.75,
            reject_at: 0.95,
        }
    }
}

/// Cluster tuning knobs.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Shard services in the cluster.
    pub shards: usize,
    /// Distinct shards each fingerprint may be served from (clamped to
    /// `shards`). 1 disables replication: a crash forces cold re-factoring
    /// at whichever shard inherits the keyspace.
    pub replicas: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Per-shard admission bound (the cluster's capacity is
    /// `live_shards × max_queue`).
    pub max_queue: usize,
    /// Per-shard factor-cache byte budget.
    pub cache_budget_bytes: usize,
    /// Most requests one batch may coalesce.
    pub max_batch: usize,
    /// Panel width for the local blocked factorizations.
    pub panel: usize,
    /// Refinement sweeps allowed when a solve misses its tolerance.
    pub refine_sweeps: usize,
    /// Deadline applied to requests that carry none.
    pub default_deadline: Option<Duration>,
    /// Copy freshly factored entries to the rest of the replica set so a
    /// crash fails over to a warm cache instead of re-factoring.
    pub replicate_hot: bool,
    /// Load-shedding thresholds.
    pub shed: ShedPolicy,
    /// Seeded chaos schedule: crash events fire at per-shard fail-point
    /// steps (dequeue / pre-factor / post-factor / pre-deliver), revive
    /// events fire against the cluster-wide submission count.
    pub faults: FaultPlan,
    /// Optional distributed backend for cold large factorizations,
    /// identical to the single-node service's.
    pub distributed: Option<DistributedConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            replicas: 2,
            workers_per_shard: 1,
            max_queue: 64,
            cache_budget_bytes: 64 << 20,
            max_batch: 32,
            panel: 64,
            refine_sweeps: 5,
            default_deadline: None,
            replicate_hot: true,
            shed: ShedPolicy::default(),
            faults: FaultPlan::none(),
            distributed: None,
        }
    }
}

/// What [`serve_cluster`] hands back after the scope closes.
#[derive(Debug)]
pub struct ClusterReport {
    /// Final aggregated statistics.
    pub stats: ClusterStats,
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

struct ClusterPending {
    fp: Fingerprint,
    matrix: Arc<Matrix>,
    kind: MatrixKind,
    rhs: Matrix,
    tolerance: f64,
    deadline: Option<Duration>,
    /// Submission instant, preserved across failovers so end-to-end
    /// latency (and deadlines) keep counting through a crash.
    enqueued: Instant,
    slot: Arc<Slot>,
    /// Times this request was re-routed after a shard crash.
    failovers: u32,
    /// Admitted under refinement shedding: serve the direct solve only.
    no_refine: bool,
    /// Ring preference order, fixed at submission (the ring is static).
    route: Vec<usize>,
}

struct ShardState {
    queue: VecDeque<ClusterPending>,
    cache: FactorCache,
    factoring: HashSet<Fingerprint>,
    alive: bool,
    /// Bumped on every crash. Workers capture it at dequeue and re-check
    /// before trusting anything computed from pre-crash shard memory.
    epoch: u64,
    /// Next unfired entry of [`ShardRt::crash_steps`].
    next_crash: usize,
}

struct ShardRt {
    state: Mutex<ShardState>,
    work: Condvar,
    /// Fail-point clock: each worker fail-point ticks it once.
    step: AtomicU64,
    /// Sorted fail-point steps at which this shard crashes.
    crash_steps: Vec<usize>,
}

struct ClusterShared {
    cfg: ClusterConfig,
    ring: HashRing,
    epoch: Instant,
    shards: Vec<ShardRt>,
    registry: Mutex<HashMap<u64, Registered>>,
    collector: Mutex<Collector>,
    shutdown: AtomicBool,
    /// Cluster-wide submission count; doubles as the revive clock.
    submitted_total: AtomicU64,
    revive_events: Vec<ReviveEvent>,
    revives_fired: Mutex<Vec<bool>>,
    crashes: AtomicU64,
    revives: AtomicU64,
    failovers: AtomicU64,
    replicated: AtomicU64,
    rebalanced: AtomicU64,
    shed_cold_miss: AtomicU64,
    refines_shed: AtomicU64,
    unavailable: AtomicU64,
}

/// Client-side handle to a running cluster, valid inside the
/// [`serve_cluster`] scope. Shareable across client threads by reference.
pub struct ClusterHandle {
    shared: Arc<ClusterShared>,
}

impl ClusterHandle {
    /// Register (or replace) a matrix under `matrix_id`, cluster-wide.
    /// Returns its content fingerprint; re-registering different data
    /// under the same id changes the fingerprint, so no shard can ever
    /// serve a stale factor for it.
    pub fn register_matrix(&self, matrix_id: u64, matrix: Matrix, kind: MatrixKind) -> Fingerprint {
        let fp = Fingerprint::of(&matrix);
        self.shared.registry.lock().unwrap().insert(
            matrix_id,
            Registered {
                matrix: Arc::new(matrix),
                kind,
                fp,
            },
        );
        fp
    }

    /// The ring preference order for a fingerprint: `route_of(fp)[0]` is
    /// its primary shard, the rest its replica set.
    pub fn route_of(&self, fp: Fingerprint) -> Vec<usize> {
        self.shared.ring.route(fp, self.shared.cfg.replicas)
    }

    /// Shards currently alive.
    pub fn live_shards(&self) -> usize {
        self.shared.live_count()
    }

    /// Crash a shard now: its cache and single-flight state are wiped and
    /// every queued request fails over to the next live replica (or
    /// resolves to [`SolveError::NoLiveReplica`]). Returns `false` if the
    /// shard was already dead.
    pub fn kill_shard(&self, shard: usize) -> bool {
        let sh = &self.shared;
        let orphans = {
            let mut st = sh.shards[shard].state.lock().unwrap();
            if !st.alive {
                return false;
            }
            crash_locked(&mut st)
        };
        sh.crashes.fetch_add(1, Ordering::Relaxed);
        sh.shards[shard].work.notify_all();
        sh.fail_over(orphans);
        true
    }

    /// Bring a dead shard back (empty) and rebalance: factors whose ring
    /// primary is this shard are copied over from live replicas still
    /// holding them. Returns `false` if the shard was already alive.
    pub fn revive_shard(&self, shard: usize) -> bool {
        self.shared.revive(shard)
    }

    /// Submit a request. Fails fast — never blocks on a full cluster.
    pub fn submit(&self, req: SolveRequest) -> Result<Ticket, SolveError> {
        let sh = &self.shared;
        if sh.shutdown.load(Ordering::SeqCst) {
            return Err(SolveError::ShuttingDown);
        }
        let reg = match sh.registry.lock().unwrap().get(&req.matrix_id) {
            Some(r) => r.clone(),
            None => {
                return Err(SolveError::UnknownMatrix {
                    matrix_id: req.matrix_id,
                })
            }
        };
        if reg.matrix.rows() != req.rhs.rows() {
            return Err(SolveError::ShapeMismatch {
                matrix_rows: reg.matrix.rows(),
                rhs_rows: req.rhs.rows(),
            });
        }
        let clock = sh.submitted_total.fetch_add(1, Ordering::SeqCst) as usize + 1;
        sh.fire_due_revives(clock);

        let route = sh.ring.route(reg.fp, sh.cfg.replicas);
        // one pass over all shards: cluster pressure, liveness, and
        // whether any live replica already holds (or is computing) the
        // factor this request needs
        let mut total_queued = 0usize;
        let mut live = 0usize;
        let mut live_route = 0usize;
        let mut route_warm = false;
        for (sid, shard) in sh.shards.iter().enumerate() {
            let st = shard.state.lock().unwrap();
            if !st.alive {
                continue;
            }
            live += 1;
            total_queued += st.queue.len();
            if route.contains(&sid) {
                live_route += 1;
                if st.cache.contains(reg.fp) || st.factoring.contains(&reg.fp) {
                    route_warm = true;
                }
            }
        }
        if live == 0 {
            sh.unavailable.fetch_add(1, Ordering::Relaxed);
            return Err(SolveError::NoLiveReplica {
                live: 0,
                shards: sh.cfg.shards,
            });
        }
        let pressure = total_queued as f64 / (live * sh.cfg.max_queue) as f64;
        if pressure >= sh.cfg.shed.reject_at {
            sh.collector.lock().unwrap().rejected_overloaded += 1;
            return Err(SolveError::Overloaded {
                depth: total_queued,
            });
        }
        if pressure >= sh.cfg.shed.cold_miss_at && !route_warm {
            sh.shed_cold_miss.fetch_add(1, Ordering::Relaxed);
            return Err(SolveError::ShedColdMiss {
                depth: total_queued,
            });
        }
        let no_refine = pressure >= sh.cfg.shed.refine_at;

        let slot = Arc::new(Slot::default());
        let mut pending = Some(ClusterPending {
            fp: reg.fp,
            matrix: reg.matrix,
            kind: reg.kind,
            rhs: req.rhs,
            tolerance: req.tolerance,
            deadline: req.deadline.or(sh.cfg.default_deadline),
            enqueued: Instant::now(),
            slot: Arc::clone(&slot),
            failovers: 0,
            no_refine,
            route: route.clone(),
        });
        for &sid in &route {
            let mut st = sh.shards[sid].state.lock().unwrap();
            if st.alive && st.queue.len() < sh.cfg.max_queue {
                st.queue.push_back(pending.take().expect("not yet placed"));
                sh.collector.lock().unwrap().submitted += 1;
                drop(st);
                sh.shards[sid].work.notify_one();
                return Ok(Ticket::from_slot(slot));
            }
        }
        if live_route == 0 {
            sh.unavailable.fetch_add(1, Ordering::Relaxed);
            Err(SolveError::NoLiveReplica {
                live,
                shards: sh.cfg.shards,
            })
        } else {
            sh.collector.lock().unwrap().rejected_overloaded += 1;
            Err(SolveError::Overloaded {
                depth: total_queued,
            })
        }
    }

    /// Submit and block for the answer.
    pub fn solve(&self, req: SolveRequest) -> Result<SolveResponse, SolveError> {
        self.submit(req)?.wait()
    }

    /// Point-in-time statistics snapshot.
    pub fn stats(&self) -> ClusterStats {
        snapshot_cluster(&self.shared, self.shared.epoch.elapsed().as_secs_f64())
    }
}

fn snapshot_cluster(sh: &ClusterShared, elapsed_s: f64) -> ClusterStats {
    let mut service = sh.collector.lock().unwrap().snapshot(elapsed_s);
    let mut per_shard = Vec::with_capacity(sh.shards.len());
    let mut live_shards = 0;
    for (sid, shard) in sh.shards.iter().enumerate() {
        let st = shard.state.lock().unwrap();
        service.cache_hits += st.cache.hits;
        service.cache_misses += st.cache.misses;
        service.cache_evictions += st.cache.evictions;
        service.cache_bytes += st.cache.bytes();
        service.cache_entries += st.cache.len();
        if st.alive {
            live_shards += 1;
        }
        per_shard.push(ShardSnapshot {
            shard: sid,
            alive: st.alive,
            queue_depth: st.queue.len(),
            cache_entries: st.cache.len(),
            cache_bytes: st.cache.bytes(),
            cache_hits: st.cache.hits,
            cache_misses: st.cache.misses,
        });
    }
    ClusterStats {
        service,
        shards: sh.cfg.shards,
        replicas: sh.cfg.replicas.clamp(1, sh.cfg.shards),
        live_shards,
        crashes: sh.crashes.load(Ordering::Relaxed),
        revives: sh.revives.load(Ordering::Relaxed),
        failovers: sh.failovers.load(Ordering::Relaxed),
        replicated_factors: sh.replicated.load(Ordering::Relaxed),
        rebalanced_factors: sh.rebalanced.load(Ordering::Relaxed),
        shed_cold_miss: sh.shed_cold_miss.load(Ordering::Relaxed),
        refines_shed: sh.refines_shed.load(Ordering::Relaxed),
        unavailable: sh.unavailable.load(Ordering::Relaxed),
        per_shard,
    }
}

// ---------------------------------------------------------------------------
// Crash / failover / revive machinery
// ---------------------------------------------------------------------------

/// Kill the shard whose state lock the caller holds: dead, epoch bumped,
/// memory wiped, queue taken. The caller must fail the returned orphans
/// over *after* releasing the lock.
fn crash_locked(st: &mut ShardState) -> Vec<ClusterPending> {
    st.alive = false;
    st.epoch += 1;
    st.factoring.clear();
    st.cache.clear();
    st.queue.drain(..).collect()
}

impl ClusterShared {
    fn live_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.state.lock().unwrap().alive)
            .count()
    }

    /// Re-enqueue crash orphans at their next live replica. Admission is
    /// bypassed — these tickets were already accepted and must resolve.
    /// With no live replica left they resolve to the typed
    /// [`SolveError::NoLiveReplica`].
    fn fail_over(&self, orphans: Vec<ClusterPending>) {
        for mut p in orphans {
            p.failovers += 1;
            self.failovers.fetch_add(1, Ordering::Relaxed);
            let route = p.route.clone();
            let mut pending = Some(p);
            for sid in route {
                let shard = &self.shards[sid];
                let mut st = shard.state.lock().unwrap();
                if st.alive {
                    st.queue.push_back(pending.take().expect("not yet placed"));
                    drop(st);
                    shard.work.notify_one();
                    break;
                }
            }
            if let Some(p) = pending {
                let live = self.live_count();
                self.collector.lock().unwrap().failed += 1;
                p.slot.deliver(Err(SolveError::NoLiveReplica {
                    live,
                    shards: self.cfg.shards,
                }));
            }
        }
    }

    fn fire_due_revives(&self, clock: usize) {
        if self.revive_events.is_empty() {
            return;
        }
        let due: Vec<usize> = {
            let mut fired = self.revives_fired.lock().unwrap();
            let mut due = Vec::new();
            for (i, ev) in self.revive_events.iter().enumerate() {
                if !fired[i] && clock >= ev.at_step && ev.rank < self.cfg.shards {
                    fired[i] = true;
                    due.push(ev.rank);
                }
            }
            due
        };
        for sid in due {
            self.revive(sid);
        }
    }

    /// Revive a dead shard and rebalance its primary keyspace back onto
    /// it from live replicas. Returns `false` if it was already alive.
    fn revive(&self, sid: usize) -> bool {
        {
            let mut st = self.shards[sid].state.lock().unwrap();
            if st.alive {
                return false;
            }
            st.alive = true;
        }
        self.revives.fetch_add(1, Ordering::Relaxed);
        // collect factors whose primary is the revived shard, one donor
        // lock at a time (never two shard locks at once)
        let mut moved: Vec<(Fingerprint, CachedFactor)> = Vec::new();
        for (t, shard) in self.shards.iter().enumerate() {
            if t == sid {
                continue;
            }
            let st = shard.state.lock().unwrap();
            if !st.alive {
                continue;
            }
            for fp in st.cache.fingerprints() {
                if self.ring.route(fp, self.cfg.replicas)[0] == sid
                    && !moved.iter().any(|(m, _)| *m == fp)
                {
                    if let Some(f) = st.cache.peek(fp) {
                        moved.push((fp, f.clone()));
                    }
                }
            }
        }
        let mut st = self.shards[sid].state.lock().unwrap();
        if st.alive {
            for (fp, f) in moved {
                if !st.cache.contains(fp) {
                    st.cache.insert(fp, f);
                    self.rebalanced.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drop(st);
        self.shards[sid].work.notify_all();
        true
    }

    /// Copy a freshly factored entry to the rest of its replica set.
    fn replicate(&self, from: usize, fp: Fingerprint, factor: &CachedFactor, route: &[usize]) {
        if !self.cfg.replicate_hot {
            return;
        }
        for &t in route {
            if t == from {
                continue;
            }
            let mut st = self.shards[t].state.lock().unwrap();
            if st.alive && !st.cache.contains(fp) {
                st.cache.insert(fp, factor.clone());
                self.replicated.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Tick shard `sid`'s fail-point clock and fire a scheduled crash if one
/// is due. Returns `true` if the shard crashed at this fail-point (the
/// calling worker must fail over whatever request it holds).
fn maybe_crash(sh: &ClusterShared, sid: usize) -> bool {
    let shard = &sh.shards[sid];
    if shard.crash_steps.is_empty() {
        return false;
    }
    let step = shard.step.fetch_add(1, Ordering::SeqCst) as usize + 1;
    let orphans = {
        let mut st = shard.state.lock().unwrap();
        if st.next_crash >= shard.crash_steps.len() || step < shard.crash_steps[st.next_crash] {
            return false;
        }
        // consume the event even when already dead, so a revive does not
        // immediately re-fire a crash that came due mid-outage
        st.next_crash += 1;
        if !st.alive {
            return false;
        }
        crash_locked(&mut st)
    };
    sh.crashes.fetch_add(1, Ordering::Relaxed);
    shard.work.notify_all();
    sh.fail_over(orphans);
    true
}

// ---------------------------------------------------------------------------
// The serve scope
// ---------------------------------------------------------------------------

/// Run a cluster: spawn every shard's worker pool, hand the client
/// closure a [`ClusterHandle`], and on return drain the queues, join the
/// workers and report.
pub fn serve_cluster<R>(
    cfg: ClusterConfig,
    f: impl FnOnce(&ClusterHandle) -> R,
) -> (R, ClusterReport) {
    let shards = cfg.shards.max(1);
    let workers = cfg.workers_per_shard.max(1);
    let epoch = Instant::now();
    let ring = HashRing::new(shards);
    let shard_rts = (0..shards)
        .map(|sid| {
            let mut crash_steps: Vec<usize> = cfg
                .faults
                .crashes()
                .iter()
                .filter(|c| c.rank == sid)
                .map(|c| c.at_step)
                .collect();
            crash_steps.sort_unstable();
            ShardRt {
                state: Mutex::new(ShardState {
                    queue: VecDeque::new(),
                    cache: FactorCache::new(cfg.cache_budget_bytes),
                    factoring: HashSet::new(),
                    alive: true,
                    epoch: 0,
                    next_crash: 0,
                }),
                work: Condvar::new(),
                step: AtomicU64::new(0),
                crash_steps,
            }
        })
        .collect();
    let revive_events: Vec<ReviveEvent> = cfg.faults.revives().to_vec();
    let fired = vec![false; revive_events.len()];
    let shared = Arc::new(ClusterShared {
        cfg: ClusterConfig {
            shards,
            workers_per_shard: workers,
            ..cfg
        },
        ring,
        epoch,
        shards: shard_rts,
        registry: Mutex::new(HashMap::new()),
        collector: Mutex::new(Collector::default()),
        shutdown: AtomicBool::new(false),
        submitted_total: AtomicU64::new(0),
        revive_events,
        revives_fired: Mutex::new(fired),
        crashes: AtomicU64::new(0),
        revives: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        replicated: AtomicU64::new(0),
        rebalanced: AtomicU64::new(0),
        shed_cold_miss: AtomicU64::new(0),
        refines_shed: AtomicU64::new(0),
        unavailable: AtomicU64::new(0),
    });

    let result = crossbeam::thread::scope(|s| {
        for sid in 0..shards {
            for _ in 0..workers {
                let shared = Arc::clone(&shared);
                s.spawn(move |_| worker_loop(&shared, sid));
            }
        }
        let handle = ClusterHandle {
            shared: Arc::clone(&shared),
        };
        // flag shutdown even if `f` unwinds, so the scope join cannot
        // deadlock on parked workers
        struct ShutdownOnDrop<'a>(&'a ClusterShared);
        impl Drop for ShutdownOnDrop<'_> {
            fn drop(&mut self) {
                self.0.shutdown.store(true, Ordering::SeqCst);
                for shard in &self.0.shards {
                    drop(shard.state.lock().unwrap());
                    shard.work.notify_all();
                }
            }
        }
        let guard = ShutdownOnDrop(&shared);
        let r = f(&handle);
        drop(guard);
        r
    })
    .expect("cluster worker panicked");

    let elapsed_s = epoch.elapsed().as_secs_f64();
    let stats = snapshot_cluster(&shared, elapsed_s);
    debug_assert!(
        stats.per_shard.iter().all(|s| s.queue_depth == 0),
        "shutdown drained every shard queue"
    );
    (result, ClusterReport { stats })
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

struct Member {
    pending: ClusterPending,
    queue_wait: Duration,
    cache_hit: bool,
}

fn worker_loop(sh: &ClusterShared, sid: usize) {
    let shard = &sh.shards[sid];
    loop {
        let mut st = shard.state.lock().unwrap();
        let taken = loop {
            if st.alive {
                let free = (0..st.queue.len()).find(|&i| !st.factoring.contains(&st.queue[i].fp));
                if let Some(i) = free {
                    break Some(st.queue.remove(i).expect("index in bounds"));
                }
            }
            if sh.shutdown.load(Ordering::SeqCst) && st.queue.is_empty() {
                break None;
            }
            st = shard.work.wait(st).unwrap();
        };
        let Some(lead) = taken else { return };
        let epoch0 = st.epoch;
        drop(st);

        // fail-point: dequeue. A crash here loses the shard's memory but
        // not the lead (we hold it): fail it over like the queue orphans.
        if maybe_crash(sh, sid) {
            sh.fail_over(vec![lead]);
            continue;
        }

        let waited = lead.enqueued.elapsed();
        if let Some(deadline) = lead.deadline {
            if waited > deadline {
                sh.collector.lock().unwrap().deadline_misses += 1;
                lead.slot
                    .deliver(Err(SolveError::DeadlineExceeded { waited, deadline }));
                continue;
            }
        }

        let mut st = shard.state.lock().unwrap();
        if st.epoch != epoch0 || !st.alive {
            // killed from outside between dequeue and here
            drop(st);
            sh.fail_over(vec![lead]);
            continue;
        }
        match st.cache.lookup(lead.fp) {
            Some(factor) => {
                let batch = coalesce(&mut st, lead, sh.cfg.max_batch, true, true);
                st.cache.note_extra_hits(batch.len() as u64 - 1);
                drop(st);
                run_batch(sh, sid, epoch0, &factor, batch, Duration::ZERO, false);
                shard.work.notify_all();
            }
            None => {
                st.factoring.insert(lead.fp);
                drop(st);

                // fail-point: pre-factor
                if maybe_crash(sh, sid) {
                    sh.fail_over(vec![lead]);
                    continue;
                }
                let start = Instant::now();
                let outcome =
                    exec::factor_matrix(sh.cfg.panel, sh.cfg.distributed, &lead.matrix, lead.kind);
                let factor_time = start.elapsed();
                // fail-point: post-factor — the freshly computed factor
                // dies with the shard before reaching the cache
                if maybe_crash(sh, sid) {
                    sh.fail_over(vec![lead]);
                    continue;
                }

                let mut st = shard.state.lock().unwrap();
                if st.epoch != epoch0 || !st.alive {
                    drop(st);
                    sh.fail_over(vec![lead]);
                    continue;
                }
                st.factoring.remove(&lead.fp);
                match outcome {
                    Ok(factored) => {
                        {
                            let mut col = sh.collector.lock().unwrap();
                            if factored.distributed {
                                col.distributed_factors += 1;
                            }
                            if factored.spd_fallback {
                                col.spd_fallbacks += 1;
                            }
                        }
                        let fp = lead.fp;
                        let route = lead.route.clone();
                        st.cache.insert(fp, factored.factor.clone());
                        let batch = coalesce(&mut st, lead, sh.cfg.max_batch, false, true);
                        st.cache.note_extra_hits(batch.len() as u64 - 1);
                        drop(st);
                        sh.replicate(sid, fp, &factored.factor, &route);
                        run_batch(
                            sh,
                            sid,
                            epoch0,
                            &factored.factor,
                            batch,
                            factor_time,
                            factored.distributed,
                        );
                    }
                    Err(err) => {
                        // every queued request for this fingerprint fails
                        // identically: fail the cohort together
                        let batch = coalesce(&mut st, lead, usize::MAX, false, false);
                        drop(st);
                        sh.collector.lock().unwrap().failed += batch.len() as u64;
                        for member in batch {
                            member.pending.slot.deliver(Err(err.clone()));
                        }
                    }
                }
                shard.work.notify_all();
            }
        }
    }
}

/// Pull every queued request with the leader's fingerprint (up to
/// `max_batch` total) out of the shard queue. Caller holds the lock.
fn coalesce(
    st: &mut ShardState,
    lead: ClusterPending,
    max_batch: usize,
    lead_hit: bool,
    riders_hit: bool,
) -> Vec<Member> {
    let fp = lead.fp;
    let lead_wait = lead.enqueued.elapsed();
    let mut batch = vec![Member {
        pending: lead,
        queue_wait: lead_wait,
        cache_hit: lead_hit,
    }];
    let mut i = 0;
    while batch.len() < max_batch && i < st.queue.len() {
        if st.queue[i].fp == fp {
            let p = st.queue.remove(i).expect("index in bounds");
            batch.push(Member {
                queue_wait: p.enqueued.elapsed(),
                pending: p,
                cache_hit: riders_hit,
            });
        } else {
            i += 1;
        }
    }
    batch
}

/// Solve one coalesced batch on shard `sid`: stack the RHS columns, one
/// multi-RHS pass, per-member residual/refinement, then — only if the
/// shard's epoch still matches — account and deliver. On an epoch
/// mismatch (the shard crashed mid-compute) everything computed is
/// discarded and the batch fails over.
fn run_batch(
    sh: &ClusterShared,
    sid: usize,
    epoch0: u64,
    factor: &CachedFactor,
    batch: Vec<Member>,
    factor_time: Duration,
    distributed: bool,
) {
    // honor deadlines of riders that aged out while queued
    let mut active: Vec<Member> = Vec::with_capacity(batch.len());
    let mut missed = 0u64;
    for member in batch {
        match member.pending.deadline {
            Some(deadline) if member.queue_wait > deadline => {
                missed += 1;
                member
                    .pending
                    .slot
                    .deliver(Err(SolveError::DeadlineExceeded {
                        waited: member.queue_wait,
                        deadline,
                    }));
            }
            _ => active.push(member),
        }
    }
    if missed > 0 {
        sh.collector.lock().unwrap().deadline_misses += missed;
    }
    if active.is_empty() {
        return;
    }

    let a = Arc::clone(&active[0].pending.matrix);
    let n = a.rows();
    let batch_size = active.len();
    let k_total: usize = active.iter().map(|m| m.pending.rhs.cols()).sum();

    let solve_start = Instant::now();
    let mut big = Matrix::zeros(n, k_total);
    let mut off = 0;
    for member in &active {
        big.set_block(0, off, &member.pending.rhs);
        off += member.pending.rhs.cols();
    }
    let mut x = Matrix::zeros(n, k_total);
    factor.solve_into(&big, &mut x);
    let mut r = big;
    gemm_auto(&mut r, -1.0, &a, &x, 1.0);
    let solve_time = solve_start.elapsed();

    let mut results: Vec<Result<SolveResponse, SolveError>> = Vec::with_capacity(batch_size);
    let mut refined_count = 0u64;
    let mut off = 0;
    for member in &active {
        let p = &member.pending;
        let k = p.rhs.cols();
        let bnorm = p.rhs.frobenius_norm().max(f64::MIN_POSITIVE);
        let residual = r.block(0, off, n, k).frobenius_norm() / bnorm;
        let mut stats = RequestStats {
            queue_wait: member.queue_wait,
            factor_time,
            solve_time,
            refine_time: Duration::ZERO,
            cache_hit: member.cache_hit,
            batch_size,
            refined: false,
            refine_history: Vec::new(),
            distributed_factor: distributed,
            kernel: factor.kernel(),
            cg_iterations: 0,
            shard: Some(sid),
            failovers: p.failovers,
            fingerprint: Some(p.fp),
        };
        let result = if residual <= p.tolerance {
            Ok(SolveResponse {
                x: x.block(0, off, n, k),
                residual,
                stats,
            })
        } else if p.no_refine {
            // admitted under refinement shedding: the polish this request
            // needs was the work the cluster shed
            sh.refines_shed.fetch_add(1, Ordering::Relaxed);
            Err(SolveError::ToleranceNotMet {
                achieved: residual,
                requested: p.tolerance,
                sweeps: 0,
            })
        } else {
            let refine_start = Instant::now();
            let outcome = exec::refine_solution(
                factor,
                &a,
                &p.rhs,
                p.tolerance,
                sh.cfg.refine_sweeps,
                x.block(0, off, n, k),
                residual,
            );
            stats.refine_time = refine_start.elapsed();
            match outcome {
                Ok((x_ref, res, history)) => {
                    refined_count += 1;
                    stats.refined = true;
                    stats.refine_history = history;
                    Ok(SolveResponse {
                        x: x_ref,
                        residual: res,
                        stats,
                    })
                }
                Err(e) => Err(e),
            }
        };
        results.push(result);
        off += k;
    }

    // fail-point: pre-deliver — the computed answers die with the shard
    if maybe_crash(sh, sid) {
        sh.fail_over(active.into_iter().map(|m| m.pending).collect());
        return;
    }
    // epoch check against kill_shard from another thread: delivering work
    // computed on pre-crash shard memory would be serving partial state
    {
        let st = sh.shards[sid].state.lock().unwrap();
        if st.epoch != epoch0 || !st.alive {
            drop(st);
            sh.fail_over(active.into_iter().map(|m| m.pending).collect());
            return;
        }
    }

    {
        let mut col = sh.collector.lock().unwrap();
        col.record_batch(batch_size);
        col.refined += refined_count;
        for (member, result) in active.iter().zip(&results) {
            match result {
                Ok(_) => {
                    col.completed += 1;
                    col.latencies
                        .push(member.pending.enqueued.elapsed().as_secs_f64());
                }
                Err(_) => col.failed += 1,
            }
        }
    }
    for (member, result) in active.into_iter().zip(results) {
        member.pending.slot.deliver(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd_matrix(n: usize, seed: u64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64 + 1.0 + seed as f64
            } else {
                0.5 / (1.0 + (i + 2 * j + seed as usize) as f64)
            }
        })
    }

    fn quick_cfg(shards: usize, replicas: usize) -> ClusterConfig {
        ClusterConfig {
            shards,
            replicas,
            workers_per_shard: 1,
            panel: 8,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn multi_tenant_solves_route_and_complete() {
        let cfg = quick_cfg(3, 2);
        let ((), report) = serve_cluster(cfg, |h| {
            for t in 0..6u64 {
                let a = dd_matrix(16, t);
                h.register_matrix(t, a.clone(), MatrixKind::General);
                let b = Matrix::from_fn(16, 2, |i, j| (i + j + t as usize) as f64);
                let resp = h.solve(SolveRequest::new(t, b)).unwrap();
                assert!(resp.residual <= 1e-10);
                let shard = resp.stats.shard.expect("cluster sets the shard");
                let fp = resp.stats.fingerprint.expect("cluster echoes the fp");
                assert!(h.route_of(fp).contains(&shard), "served off-route");
            }
        });
        assert_eq!(report.stats.service.completed, 6);
        assert_eq!(report.stats.live_shards, 3);
        assert!(report.stats.accounted(), "{:?}", report.stats);
    }

    #[test]
    fn second_solve_hits_cache_and_replicas_are_warm() {
        let cfg = quick_cfg(3, 2);
        let ((), report) = serve_cluster(cfg, |h| {
            let a = dd_matrix(16, 9);
            h.register_matrix(1, a, MatrixKind::General);
            let b = Matrix::from_fn(16, 1, |i, _| i as f64 + 1.0);
            let first = h.solve(SolveRequest::new(1, b.clone())).unwrap();
            assert!(!first.stats.cache_hit);
            let second = h.solve(SolveRequest::new(1, b)).unwrap();
            assert!(second.stats.cache_hit, "same content must hit the cache");
            let fp = first.stats.fingerprint.unwrap();
            let route = h.route_of(fp);
            let snap = h.stats();
            for &sid in &route {
                assert!(
                    snap.per_shard[sid].cache_entries >= 1,
                    "replica {sid} was not warmed: {snap:?}"
                );
            }
        });
        assert_eq!(report.stats.replicated_factors, 1);
    }

    #[test]
    fn kill_fails_over_to_warm_replica() {
        let cfg = quick_cfg(3, 2);
        let ((), report) = serve_cluster(cfg, |h| {
            let a = dd_matrix(16, 3);
            let fp = h.register_matrix(1, a, MatrixKind::General);
            let b = Matrix::from_fn(16, 1, |i, _| 1.0 + i as f64);
            h.solve(SolveRequest::new(1, b.clone())).unwrap();
            let primary = h.route_of(fp)[0];
            assert!(h.kill_shard(primary));
            assert!(!h.kill_shard(primary), "double kill reports dead");
            assert_eq!(h.live_shards(), 2);
            let resp = h.solve(SolveRequest::new(1, b)).unwrap();
            assert_ne!(resp.stats.shard, Some(primary));
            assert!(resp.stats.cache_hit, "replica should have been warm");
            assert_eq!(resp.stats.fingerprint, Some(fp));
        });
        assert_eq!(report.stats.crashes, 1);
        assert!(report.stats.accounted());
    }

    #[test]
    fn all_replicas_dead_is_a_typed_error_not_a_hang() {
        let cfg = quick_cfg(2, 2);
        serve_cluster(cfg, |h| {
            let a = dd_matrix(12, 1);
            h.register_matrix(1, a, MatrixKind::General);
            h.kill_shard(0);
            h.kill_shard(1);
            let b = Matrix::from_fn(12, 1, |i, _| i as f64);
            let err = h.solve(SolveRequest::new(1, b)).unwrap_err();
            assert_eq!(err, SolveError::NoLiveReplica { live: 0, shards: 2 });
        });
    }

    #[test]
    fn revive_rebalances_primary_keyspace() {
        let cfg = quick_cfg(3, 2);
        let ((), report) = serve_cluster(cfg, |h| {
            let a = dd_matrix(16, 5);
            let fp = h.register_matrix(1, a, MatrixKind::General);
            let b = Matrix::from_fn(16, 1, |i, _| 2.0 + i as f64);
            h.solve(SolveRequest::new(1, b.clone())).unwrap();
            let primary = h.route_of(fp)[0];
            h.kill_shard(primary);
            // replica keeps serving while the primary is down
            assert!(
                h.solve(SolveRequest::new(1, b.clone()))
                    .unwrap()
                    .stats
                    .cache_hit
            );
            assert!(h.revive_shard(primary));
            assert!(!h.revive_shard(primary), "double revive reports alive");
            let snap = h.stats();
            assert!(
                snap.per_shard[primary].cache_entries >= 1,
                "rebalance did not warm the revived primary: {snap:?}"
            );
        });
        assert!(report.stats.rebalanced_factors >= 1);
        assert_eq!(report.stats.revives, 1);
    }

    #[test]
    fn shed_tiers_reject_in_order() {
        // a cluster whose queues are saturated by construction: shed
        // decisions are driven purely by the pressure arithmetic, so pin
        // it with zero-capacity thresholds
        let cfg = ClusterConfig {
            shards: 2,
            replicas: 1,
            shed: ShedPolicy {
                refine_at: 0.0,
                cold_miss_at: 0.0,
                reject_at: 2.0,
            },
            ..quick_cfg(2, 1)
        };
        let ((), report) = serve_cluster(cfg, |h| {
            let a = dd_matrix(12, 2);
            h.register_matrix(1, a, MatrixKind::General);
            let b = Matrix::from_fn(12, 1, |i, _| i as f64);
            // pressure 0 == cold_miss_at: the very first request is cold
            // and gets shed
            let err = h.solve(SolveRequest::new(1, b)).unwrap_err();
            assert!(matches!(err, SolveError::ShedColdMiss { .. }), "{err}");
            assert!(err.is_retryable());
        });
        assert_eq!(report.stats.shed_cold_miss, 1);
        assert_eq!(report.stats.service.submitted, 0);
    }

    #[test]
    fn unknown_matrix_and_shape_mismatch_still_typed() {
        serve_cluster(quick_cfg(2, 1), |h| {
            let err = h
                .solve(SolveRequest::new(42, Matrix::zeros(4, 1)))
                .unwrap_err();
            assert_eq!(err, SolveError::UnknownMatrix { matrix_id: 42 });
            h.register_matrix(1, dd_matrix(8, 0), MatrixKind::General);
            let err = h
                .solve(SolveRequest::new(1, Matrix::zeros(5, 1)))
                .unwrap_err();
            assert!(matches!(err, SolveError::ShapeMismatch { .. }));
        });
    }
}
