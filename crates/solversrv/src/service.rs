//! The service itself: worker pool, bounded queue, admission control,
//! single-flight factoring and multi-RHS batch solving.
//!
//! Scheduling invariants:
//!
//! * **Bounded admission** — `submit` rejects with
//!   [`SolveError::Overloaded`] once `max_queue` requests are pending;
//!   nothing inside the service ever blocks a client indefinitely on a
//!   full queue.
//! * **Single-flight factoring** — at most one worker factors a given
//!   fingerprint at a time (the `factoring` set); other workers skip past
//!   its queued requests instead of duplicating the `O(n³)` work, and are
//!   woken when the factor lands in the cache.
//! * **Batching** — a worker that obtains a factor drains every queued
//!   request with the same fingerprint (up to `max_batch`) and solves them
//!   as one `n × ΣK` multi-RHS pass: the factor streams through the
//!   blocked `trsm` kernels once instead of once per request.
//! * **Drain on shutdown** — workers exit only when shutdown is flagged
//!   *and* the queue is empty, so every accepted ticket gets an answer.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use conflux::LuGrid;
use denselin::gemm::gemm_auto;
use denselin::Matrix;
use simnet::{AlphaBeta, ClockDomain, Event, RankTracer, Trace};
use sparselin::{CsrMatrix, Preconditioner};

use crate::api::{MatrixKind, RequestStats, SolveError, SolveRequest, SolveResponse};
use crate::cache::{CachedFactor, FactorCache};
use crate::exec::{self, AnyRegistered, Registered, Slot, SparseRegistered};
use crate::fingerprint::Fingerprint;
use crate::stats::{Collector, ServiceStats};

/// Route cold factorizations of large matrices through the real
/// distributed driver ([`conflux::factorize_threaded`]).
#[derive(Clone, Copy, Debug)]
pub struct DistributedConfig {
    /// Minimum matrix order that takes the distributed path; smaller
    /// matrices always factor locally (the SPMD spawn overhead would
    /// dominate).
    pub min_n: usize,
    /// COnfLUX block size `v`. The distributed path additionally requires
    /// `n % tile == 0` and `tile ≥ grid.c`; incompatible requests fall
    /// back to the local blocked LU.
    pub tile: usize,
    /// The `[q, q, c]` processor grid (`q` must be a power of two).
    pub grid: LuGrid,
}

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads servicing the queue.
    pub workers: usize,
    /// Admission bound: pending requests beyond this are rejected with
    /// [`SolveError::Overloaded`].
    pub max_queue: usize,
    /// Factor-cache byte budget.
    pub cache_budget_bytes: usize,
    /// Most requests one batch may coalesce.
    pub max_batch: usize,
    /// Panel width for the local blocked factorizations.
    pub panel: usize,
    /// Refinement sweeps allowed when a solve misses its tolerance.
    pub refine_sweeps: usize,
    /// Deadline applied to requests that carry none (`None` = unbounded).
    pub default_deadline: Option<Duration>,
    /// Record per-request wall-clock spans (queue/factor/solve/refine)
    /// into a [`simnet::Trace`] exportable to Perfetto.
    pub trace: bool,
    /// Optional distributed backend for cold large factorizations.
    pub distributed: Option<DistributedConfig>,
    /// Degradation margin for sparse CG solves: a run that misses the
    /// requested tolerance within its iteration budget is still accepted —
    /// flagged `refined` in [`RequestStats`] — if its residual is within
    /// `sparse_relax ×` the request tolerance. `1.0` disables relaxation.
    /// The sparse analogue of the dense path's refinement degradation.
    pub sparse_relax: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            max_queue: 64,
            cache_budget_bytes: 64 << 20,
            max_batch: 32,
            panel: 64,
            refine_sweeps: 5,
            default_deadline: None,
            trace: false,
            distributed: None,
            sparse_relax: 1e4,
        }
    }
}

/// What [`serve`] hands back after the scope closes: final statistics and
/// (when tracing was on) the wall-clock event trace.
#[derive(Debug)]
pub struct ServiceReport {
    /// Final aggregated statistics.
    pub stats: ServiceStats,
    /// Wall-clock spans of every request phase, one timeline per worker,
    /// exportable with [`simnet::Trace::to_chrome_trace`].
    pub trace: Option<Trace>,
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

struct Pending {
    fp: Fingerprint,
    /// The registered operand (dense matrix + kind, or CSR matrix +
    /// preconditioner) this request solves against. Both families share
    /// the queue, the admission path, deadlines, coalescing and the cache.
    op: AnyRegistered,
    rhs: Matrix,
    tolerance: f64,
    deadline: Option<Duration>,
    enqueued: Instant,
    /// Seconds since the service epoch, for the trace's queue span.
    enqueued_s: f64,
    slot: Arc<Slot>,
}

/// A claim on a submitted request; [`Ticket::wait`] blocks for the answer.
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    pub(crate) fn from_slot(slot: Arc<Slot>) -> Self {
        Ticket { slot }
    }

    /// Block until a worker answers this request.
    pub fn wait(self) -> Result<SolveResponse, SolveError> {
        self.slot.wait_take()
    }
}

struct State {
    queue: VecDeque<Pending>,
    registry: HashMap<u64, AnyRegistered>,
    cache: FactorCache,
    /// Fingerprints some worker is currently factoring (single-flight).
    factoring: HashSet<Fingerprint>,
    collector: Collector,
    shutdown: bool,
}

struct Shared {
    cfg: ServiceConfig,
    epoch: Instant,
    state: Mutex<State>,
    work: Condvar,
}

/// Client-side handle to a running service, valid inside the [`serve`]
/// scope. Shareable across client threads by reference.
pub struct SolverHandle {
    shared: Arc<Shared>,
}

impl SolverHandle {
    /// Register (or replace) a matrix under `matrix_id`. Returns its
    /// content fingerprint — re-registering different data under the same
    /// id changes the fingerprint, so stale cached factors can never be
    /// served.
    pub fn register_matrix(&self, matrix_id: u64, matrix: Matrix, kind: MatrixKind) -> Fingerprint {
        let fp = Fingerprint::of(&matrix); // hash outside the lock
        let mut st = self.shared.state.lock().unwrap();
        st.registry.insert(
            matrix_id,
            AnyRegistered::Dense(Registered {
                matrix: Arc::new(matrix),
                kind,
                fp,
            }),
        );
        fp
    }

    /// Register (or replace) a sparse SPD system under `matrix_id`. Its
    /// solves run preconditioned CG; the cached artifact is the
    /// *preconditioner setup* (level schedules, triangles, diagonal), keyed
    /// by content fingerprint + preconditioner so repeat solves skip the
    /// analysis phase — the sparse analogue of reusing a dense factor.
    /// Errors with [`SolveError::ShapeMismatch`] on a non-square matrix.
    pub fn register_sparse(
        &self,
        matrix_id: u64,
        matrix: CsrMatrix,
        precond: Preconditioner,
    ) -> Result<Fingerprint, SolveError> {
        if matrix.rows() != matrix.cols() {
            return Err(SolveError::ShapeMismatch {
                matrix_rows: matrix.rows(),
                rhs_rows: matrix.cols(),
            });
        }
        // hash outside the lock, tagging with the preconditioner: the same
        // matrix under Jacobi and SymGS caches two distinct setups
        let fp = Fingerprint::of_csr(&matrix).with_tag(precond as u64);
        let mut st = self.shared.state.lock().unwrap();
        st.registry.insert(
            matrix_id,
            AnyRegistered::Sparse(SparseRegistered {
                matrix: Arc::new(matrix),
                precond,
                fp,
            }),
        );
        Ok(fp)
    }

    /// Submit a request. Fails fast — never blocks on a full queue.
    pub fn submit(&self, req: SolveRequest) -> Result<Ticket, SolveError> {
        let slot = {
            let mut st = self.shared.state.lock().unwrap();
            if st.shutdown {
                return Err(SolveError::ShuttingDown);
            }
            let reg = match st.registry.get(&req.matrix_id) {
                Some(r) => r.clone(),
                None => {
                    return Err(SolveError::UnknownMatrix {
                        matrix_id: req.matrix_id,
                    })
                }
            };
            let (rows, fp) = match &reg {
                AnyRegistered::Dense(r) => (r.matrix.rows(), r.fp),
                AnyRegistered::Sparse(r) => (r.matrix.rows(), r.fp),
            };
            if rows != req.rhs.rows() {
                return Err(SolveError::ShapeMismatch {
                    matrix_rows: rows,
                    rhs_rows: req.rhs.rows(),
                });
            }
            if st.queue.len() >= self.shared.cfg.max_queue {
                st.collector.rejected_overloaded += 1;
                return Err(SolveError::Overloaded {
                    depth: st.queue.len(),
                });
            }
            st.collector.submitted += 1;
            let slot = Arc::new(Slot::default());
            st.queue.push_back(Pending {
                fp,
                op: reg,
                rhs: req.rhs,
                tolerance: req.tolerance,
                deadline: req.deadline.or(self.shared.cfg.default_deadline),
                enqueued: Instant::now(),
                enqueued_s: self.shared.epoch.elapsed().as_secs_f64(),
                slot: Arc::clone(&slot),
            });
            slot
        };
        self.shared.work.notify_one();
        Ok(Ticket::from_slot(slot))
    }

    /// Submit and block for the answer.
    pub fn solve(&self, req: SolveRequest) -> Result<SolveResponse, SolveError> {
        self.submit(req)?.wait()
    }

    /// Point-in-time statistics snapshot.
    pub fn stats(&self) -> ServiceStats {
        let st = self.shared.state.lock().unwrap();
        snapshot(&st, self.shared.epoch.elapsed().as_secs_f64())
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }
}

fn snapshot(st: &State, elapsed_s: f64) -> ServiceStats {
    let mut stats = st.collector.snapshot(elapsed_s);
    stats.cache_hits = st.cache.hits;
    stats.cache_misses = st.cache.misses;
    stats.cache_evictions = st.cache.evictions;
    stats.cache_bytes = st.cache.bytes();
    stats.cache_entries = st.cache.len();
    stats
}

// ---------------------------------------------------------------------------
// The serve scope
// ---------------------------------------------------------------------------

/// Run a service: spawn the worker pool, hand the client closure a
/// [`SolverHandle`], and on return drain the queue, join the workers and
/// report. The scoped-thread structure guarantees no worker outlives the
/// borrowed matrices.
pub fn serve<R>(cfg: ServiceConfig, f: impl FnOnce(&SolverHandle) -> R) -> (R, ServiceReport) {
    let workers = cfg.workers.max(1);
    let tracing = cfg.trace;
    let budget = cfg.cache_budget_bytes;
    let epoch = Instant::now();
    let shared = Arc::new(Shared {
        cfg,
        epoch,
        state: Mutex::new(State {
            queue: VecDeque::new(),
            registry: HashMap::new(),
            cache: FactorCache::new(budget),
            factoring: HashSet::new(),
            collector: Collector::default(),
            shutdown: false,
        }),
        work: Condvar::new(),
    });

    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let result = crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            let events = &events;
            s.spawn(move |_| {
                let mut tracer = if tracing {
                    RankTracer::wall(w, epoch)
                } else {
                    RankTracer::noop()
                };
                worker_loop(&shared, &mut tracer);
                let evs = tracer.into_events();
                if !evs.is_empty() {
                    events.lock().unwrap().extend(evs);
                }
            });
        }
        let handle = SolverHandle {
            shared: Arc::clone(&shared),
        };
        // flag shutdown even if `f` unwinds: a panicking caller must not
        // leave the workers parked on the condvar forever (the scope join
        // would deadlock instead of propagating the panic)
        struct ShutdownOnDrop<'a>(&'a Shared);
        impl Drop for ShutdownOnDrop<'_> {
            fn drop(&mut self) {
                self.0.state.lock().unwrap().shutdown = true;
                self.0.work.notify_all();
            }
        }
        let guard = ShutdownOnDrop(&shared);
        let r = f(&handle);
        drop(guard);
        r
    })
    .expect("solversrv worker panicked");

    let elapsed_s = epoch.elapsed().as_secs_f64();
    let st = shared.state.lock().unwrap();
    debug_assert!(st.queue.is_empty(), "shutdown drained the queue");
    let stats = snapshot(&st, elapsed_s);
    drop(st);
    let trace = tracing.then(|| Trace {
        p: workers,
        model: AlphaBeta::aries_like(),
        clock: ClockDomain::Wall,
        events: events.into_inner().unwrap(),
    });
    (result, ServiceReport { stats, trace })
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

struct BatchMember {
    pending: Pending,
    queue_wait: Duration,
    cache_hit: bool,
}

fn worker_loop(shared: &Shared, tracer: &mut RankTracer) {
    loop {
        let mut st = shared.state.lock().unwrap();
        let idx = loop {
            // skip requests whose factor another worker is computing:
            // they will be coalesced (or unblocked) when it finishes
            let free = (0..st.queue.len()).find(|&i| !st.factoring.contains(&st.queue[i].fp));
            match free {
                Some(i) => break Some(i),
                None if st.shutdown && st.queue.is_empty() => break None,
                None => st = shared.work.wait(st).unwrap(),
            }
        };
        let Some(idx) = idx else { return };
        let lead = st.queue.remove(idx).expect("index in bounds");

        // deadline check at dequeue: a request that waited too long is
        // abandoned *before* any compute is spent on it
        let waited = lead.enqueued.elapsed();
        if let Some(deadline) = lead.deadline {
            if waited > deadline {
                st.collector.deadline_misses += 1;
                lead.slot
                    .deliver(Err(SolveError::DeadlineExceeded { waited, deadline }));
                continue;
            }
        }

        match st.cache.lookup(lead.fp) {
            Some(factor) => {
                let batch = coalesce(&mut st, lead, shared.cfg.max_batch, true, true);
                st.cache.note_extra_hits(batch.len() as u64 - 1);
                drop(st);
                solve_batch(shared, tracer, &factor, batch, Duration::ZERO, false);
                shared.work.notify_all();
            }
            None => {
                st.factoring.insert(lead.fp);
                drop(st);

                let t0 = tracer.begin();
                let start = Instant::now();
                let outcome = match &lead.op {
                    AnyRegistered::Dense(reg) => exec::factor_matrix(
                        shared.cfg.panel,
                        shared.cfg.distributed,
                        &reg.matrix,
                        reg.kind,
                    ),
                    AnyRegistered::Sparse(reg) => exec::prepare_sparse(&reg.matrix, reg.precond),
                };
                let factor_time = start.elapsed();

                let mut st = shared.state.lock().unwrap();
                st.factoring.remove(&lead.fp);
                match outcome {
                    Ok(factored) => {
                        tracer.push_compute("svc:factor", factored.factor.kernel(), t0);
                        if factored.distributed {
                            st.collector.distributed_factors += 1;
                        }
                        if factored.spd_fallback {
                            st.collector.spd_fallbacks += 1;
                        }
                        st.cache.insert(lead.fp, factored.factor.clone());
                        // the leader was a miss; riders are served from
                        // the just-inserted factor and count as hits
                        let batch = coalesce(&mut st, lead, shared.cfg.max_batch, false, true);
                        st.cache.note_extra_hits(batch.len() as u64 - 1);
                        drop(st);
                        solve_batch(
                            shared,
                            tracer,
                            &factored.factor,
                            batch,
                            factor_time,
                            factored.distributed,
                        );
                    }
                    Err(err) => {
                        tracer.push_compute("svc:factor", "failed", t0);
                        // every queued request for this fingerprint will
                        // fail identically: fail them together instead of
                        // re-factoring a singular matrix per request
                        let batch = coalesce(&mut st, lead, usize::MAX, false, false);
                        st.collector.failed += batch.len() as u64;
                        drop(st);
                        for member in batch {
                            member.pending.slot.deliver(Err(err.clone()));
                        }
                    }
                }
                // wake workers skipping this fingerprint (leftover riders
                // beyond max_batch are now plain cache hits)
                shared.work.notify_all();
            }
        }
    }
}

/// Pull every queued request with the leader's fingerprint (up to
/// `max_batch` total) out of the queue. Caller holds the state lock.
fn coalesce(
    st: &mut State,
    lead: Pending,
    max_batch: usize,
    lead_hit: bool,
    riders_hit: bool,
) -> Vec<BatchMember> {
    let fp = lead.fp;
    let lead_wait = lead.enqueued.elapsed();
    let mut batch = vec![BatchMember {
        pending: lead,
        queue_wait: lead_wait,
        cache_hit: lead_hit,
    }];
    let mut i = 0;
    while batch.len() < max_batch && i < st.queue.len() {
        if st.queue[i].fp == fp {
            let p = st.queue.remove(i).expect("index in bounds");
            batch.push(BatchMember {
                queue_wait: p.enqueued.elapsed(),
                pending: p,
                cache_hit: riders_hit,
            });
        } else {
            i += 1;
        }
    }
    batch
}

/// Solve one coalesced batch: stack the RHS columns, run one multi-RHS
/// triangular solve, check each member's residual, degrade stragglers to
/// iterative refinement, deliver every response.
fn solve_batch(
    shared: &Shared,
    tracer: &mut RankTracer,
    factor: &CachedFactor,
    batch: Vec<BatchMember>,
    factor_time: Duration,
    distributed: bool,
) {
    // queue span: from the earliest submission in the batch to now
    if tracer.enabled() {
        let t0 = batch
            .iter()
            .map(|m| m.pending.enqueued_s)
            .fold(f64::INFINITY, f64::min);
        tracer.push_compute("svc:queue", "wait", t0);
    }

    // honor deadlines of riders that aged out while queued
    let mut active: Vec<BatchMember> = Vec::with_capacity(batch.len());
    let mut missed = 0u64;
    for member in batch {
        match member.pending.deadline {
            Some(deadline) if member.queue_wait > deadline => {
                missed += 1;
                member
                    .pending
                    .slot
                    .deliver(Err(SolveError::DeadlineExceeded {
                        waited: member.queue_wait,
                        deadline,
                    }));
            }
            _ => active.push(member),
        }
    }
    if missed > 0 {
        shared.state.lock().unwrap().collector.deadline_misses += missed;
    }
    if active.is_empty() {
        return;
    }

    // one fingerprint per batch, so the first member names the operand for
    // everyone; sparse batches route through the CG path (the "factor" is a
    // preconditioner setup, not something solve_into can use)
    match &active[0].pending.op {
        AnyRegistered::Sparse(reg) => {
            let a = Arc::clone(&reg.matrix);
            let setup = Arc::clone(
                factor
                    .as_sparse()
                    .expect("sparse request coalesced with a dense factor"),
            );
            solve_sparse_batch(shared, tracer, &a, &setup, active, factor_time);
        }
        AnyRegistered::Dense(reg) => {
            let a = Arc::clone(&reg.matrix);
            solve_dense_batch(shared, tracer, factor, &a, active, factor_time, distributed);
        }
    }
}

/// The dense half of [`solve_batch`]: stack, one multi-RHS direct solve,
/// one batch residual GEMM, per-member refinement degradation.
fn solve_dense_batch(
    shared: &Shared,
    tracer: &mut RankTracer,
    factor: &CachedFactor,
    a: &Arc<Matrix>,
    active: Vec<BatchMember>,
    factor_time: Duration,
    distributed: bool,
) {
    let n = a.rows();
    let batch_size = active.len();
    let k_total: usize = active.iter().map(|m| m.pending.rhs.cols()).sum();

    // one factor pass over all stacked right-hand sides
    let t0 = tracer.begin();
    let solve_start = Instant::now();
    let mut big = Matrix::zeros(n, k_total);
    let mut off = 0;
    for member in &active {
        big.set_block(0, off, &member.pending.rhs);
        off += member.pending.rhs.cols();
    }
    let mut x = Matrix::zeros(n, k_total);
    factor.solve_into(&big, &mut x);
    // one residual GEMM for the whole batch: r = b - A·x
    let mut r = big;
    gemm_auto(&mut r, -1.0, a, &x, 1.0);
    let solve_time = solve_start.elapsed();
    tracer.push_compute("svc:solve", factor.kernel(), t0);

    // slice out each member's answer, refining where the tolerance missed
    let mut outcomes: Vec<(Arc<Slot>, Result<SolveResponse, SolveError>, Duration)> =
        Vec::with_capacity(batch_size);
    let mut refined_count = 0u64;
    let mut off = 0;
    for member in &active {
        let p = &member.pending;
        let k = p.rhs.cols();
        let bnorm = p.rhs.frobenius_norm().max(f64::MIN_POSITIVE);
        let residual = r.block(0, off, n, k).frobenius_norm() / bnorm;
        let mut stats = RequestStats {
            queue_wait: member.queue_wait,
            factor_time,
            solve_time,
            refine_time: Duration::ZERO,
            cache_hit: member.cache_hit,
            batch_size,
            refined: false,
            refine_history: Vec::new(),
            distributed_factor: distributed,
            kernel: factor.kernel(),
            cg_iterations: 0,
            shard: None,
            failovers: 0,
            fingerprint: Some(p.fp),
        };
        let result = if residual <= p.tolerance {
            Ok(SolveResponse {
                x: x.block(0, off, n, k),
                residual,
                stats,
            })
        } else {
            // graceful degradation: iterative refinement on this member
            let t0r = tracer.begin();
            let refine_start = Instant::now();
            let outcome = exec::refine_solution(
                factor,
                a,
                &p.rhs,
                p.tolerance,
                shared.cfg.refine_sweeps,
                x.block(0, off, n, k),
                residual,
            );
            stats.refine_time = refine_start.elapsed();
            tracer.push_compute("svc:refine", factor.kernel(), t0r);
            match outcome {
                Ok((x_ref, res, history)) => {
                    refined_count += 1;
                    stats.refined = true;
                    stats.refine_history = history;
                    Ok(SolveResponse {
                        x: x_ref,
                        residual: res,
                        stats,
                    })
                }
                Err(e) => Err(e),
            }
        };
        outcomes.push((Arc::clone(&p.slot), result, p.enqueued.elapsed()));
        off += k;
    }

    account_and_deliver(shared, batch_size, refined_count, outcomes);
}

/// The sparse half of [`solve_batch`]: every member solves by CG against
/// the shared matrix and cached preconditioner setup, column by column,
/// with relaxed-tolerance degradation instead of refinement sweeps.
fn solve_sparse_batch(
    shared: &Shared,
    tracer: &mut RankTracer,
    a: &Arc<CsrMatrix>,
    setup: &Arc<sparselin::PrecondSetup>,
    active: Vec<BatchMember>,
    factor_time: Duration,
) {
    let batch_size = active.len();
    let t0 = tracer.begin();
    let solve_start = Instant::now();
    let mut solved = Vec::with_capacity(batch_size);
    for member in &active {
        let p = &member.pending;
        solved.push(exec::solve_sparse_member(
            a,
            setup,
            &p.rhs,
            p.tolerance,
            shared.cfg.sparse_relax,
        ));
    }
    let solve_time = solve_start.elapsed();
    tracer.push_compute("svc:solve", "cg", t0);

    let mut outcomes: Vec<(Arc<Slot>, Result<SolveResponse, SolveError>, Duration)> =
        Vec::with_capacity(batch_size);
    let mut refined_count = 0u64;
    for (member, solved) in active.iter().zip(solved) {
        let p = &member.pending;
        let result = solved.map(|(x, residual, degraded, history, iterations)| {
            if degraded {
                refined_count += 1;
            }
            SolveResponse {
                x,
                residual,
                stats: RequestStats {
                    queue_wait: member.queue_wait,
                    factor_time,
                    solve_time,
                    refine_time: Duration::ZERO,
                    cache_hit: member.cache_hit,
                    batch_size,
                    refined: degraded,
                    refine_history: if degraded { history } else { Vec::new() },
                    distributed_factor: false,
                    kernel: "cg",
                    cg_iterations: iterations,
                    shard: None,
                    failovers: 0,
                    fingerprint: Some(p.fp),
                },
            }
        });
        outcomes.push((Arc::clone(&p.slot), result, p.enqueued.elapsed()));
    }
    account_and_deliver(shared, batch_size, refined_count, outcomes);
}

/// Shared tail of both batch paths: record batch/refinement/latency
/// counters under the lock, then deliver every response outside it.
fn account_and_deliver(
    shared: &Shared,
    batch_size: usize,
    refined_count: u64,
    outcomes: Vec<(Arc<Slot>, Result<SolveResponse, SolveError>, Duration)>,
) {
    {
        let mut st = shared.state.lock().unwrap();
        st.collector.record_batch(batch_size);
        st.collector.refined += refined_count;
        for (_, result, latency) in &outcomes {
            match result {
                Ok(_) => {
                    st.collector.completed += 1;
                    st.collector.latencies.push(latency.as_secs_f64());
                }
                Err(_) => st.collector.failed += 1,
            }
        }
    }
    for (slot, result, _) in outcomes {
        slot.deliver(result);
    }
}
