//! Service-level statistics: the observability snapshot.

use std::fmt;
use std::time::Duration;

/// Aggregated view of everything the service did, taken at shutdown (or on
/// demand through [`crate::SolverHandle::stats`]).
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with `Ok`.
    pub completed: u64,
    /// Requests rejected at admission ([`crate::SolveError::Overloaded`]).
    pub rejected_overloaded: u64,
    /// Requests abandoned past their queue-wait deadline.
    pub deadline_misses: u64,
    /// Requests answered with any other error.
    pub failed: u64,
    /// Completed requests that degraded to iterative refinement.
    pub refined: u64,
    /// SPD-tagged matrices whose Cholesky failed and fell back to LU.
    pub spd_fallbacks: u64,
    /// Cold factorizations routed through `conflux::factorize_threaded`.
    pub distributed_factors: u64,
    /// Factor-cache hits (coalesced batch members count).
    pub cache_hits: u64,
    /// Factor-cache misses.
    pub cache_misses: u64,
    /// Factor-cache evictions.
    pub cache_evictions: u64,
    /// Resident factor bytes at snapshot time.
    pub cache_bytes: usize,
    /// Resident factor entries at snapshot time.
    pub cache_entries: usize,
    /// Multi-RHS batches executed (batch of one counts).
    pub batches: u64,
    /// Requests served through those batches.
    pub batched_requests: u64,
    /// Largest batch coalesced.
    pub max_batch: usize,
    /// Median end-to-end latency of completed requests.
    pub p50_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
    /// Mean end-to-end latency.
    pub mean_latency: Duration,
    /// Worst end-to-end latency.
    pub max_latency: Duration,
    /// Completed requests per second over the service lifetime.
    pub throughput_rps: f64,
    /// Service lifetime in seconds (serve-entry to snapshot).
    pub elapsed_s: f64,
}

impl ServiceStats {
    /// Cache hit fraction (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean requests per executed batch (1.0 = no coalescing happened).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} completed, {} overloaded, {} deadline, {} failed, {} refined",
            self.submitted,
            self.completed,
            self.rejected_overloaded,
            self.deadline_misses,
            self.failed,
            self.refined
        )?;
        writeln!(
            f,
            "cache:    {:.1}% hit ({} hit / {} miss), {} evictions, {} entries, {:.1} MiB resident",
            100.0 * self.hit_rate(),
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_entries,
            self.cache_bytes as f64 / (1024.0 * 1024.0)
        )?;
        writeln!(
            f,
            "batching: {} batches for {} requests (mean {:.2}, max {}), {} distributed factors, {} spd fallbacks",
            self.batches,
            self.batched_requests,
            self.mean_batch(),
            self.max_batch,
            self.distributed_factors,
            self.spd_fallbacks
        )?;
        writeln!(
            f,
            "latency:  p50 {:.3} ms, p99 {:.3} ms, mean {:.3} ms, max {:.3} ms",
            self.p50_latency.as_secs_f64() * 1e3,
            self.p99_latency.as_secs_f64() * 1e3,
            self.mean_latency.as_secs_f64() * 1e3,
            self.max_latency.as_secs_f64() * 1e3
        )?;
        write!(
            f,
            "rate:     {:.1} req/s over {:.3} s",
            self.throughput_rps, self.elapsed_s
        )
    }
}

/// Point-in-time view of one shard inside a [`ClusterStats`] snapshot.
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Is the shard up?
    pub alive: bool,
    /// Requests waiting in this shard's queue.
    pub queue_depth: usize,
    /// Resident factor entries.
    pub cache_entries: usize,
    /// Resident factor bytes.
    pub cache_bytes: usize,
    /// Cumulative cache hits (survives crashes; resident entries do not).
    pub cache_hits: u64,
    /// Cumulative cache misses.
    pub cache_misses: u64,
}

/// Aggregated view of everything a [`crate::cluster::serve_cluster`] run
/// did: the familiar [`ServiceStats`] rollup plus the cluster-only
/// counters (crashes, failovers, replication, shedding) and a per-shard
/// breakdown.
#[derive(Clone, Debug)]
pub struct ClusterStats {
    /// Service-level rollup across every shard (cache fields are summed).
    pub service: ServiceStats,
    /// Shards configured.
    pub shards: usize,
    /// Replication factor (distinct shards per fingerprint).
    pub replicas: usize,
    /// Shards alive at snapshot time.
    pub live_shards: usize,
    /// Shard crashes (scheduled fail-points plus explicit kills).
    pub crashes: u64,
    /// Shard revivals.
    pub revives: u64,
    /// Ticket re-routes after a crash (per orphaned request, per hop).
    pub failovers: u64,
    /// Hot factors copied to replicas at insert time.
    pub replicated_factors: u64,
    /// Factors copied back to a revived primary by the rebalance pass.
    pub rebalanced_factors: u64,
    /// Requests shed at admission because they needed a cold
    /// factorization under pressure.
    pub shed_cold_miss: u64,
    /// Requests that missed tolerance because their refinement was shed.
    pub refines_shed: u64,
    /// Submissions rejected because no replica was alive.
    pub unavailable: u64,
    /// One snapshot per shard.
    pub per_shard: Vec<ShardSnapshot>,
}

impl ClusterStats {
    /// The zero-lost-ticket invariant: every admitted request resolved to
    /// a completion, a typed failure, or a deadline miss. False means a
    /// ticket was silently dropped somewhere.
    pub fn accounted(&self) -> bool {
        self.service.completed + self.service.failed + self.service.deadline_misses
            == self.service.submitted
    }
}

impl fmt::Display for ClusterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.service)?;
        writeln!(
            f,
            "cluster:  {}/{} shards up (r={}), {} crashes, {} revives, {} failovers",
            self.live_shards,
            self.shards,
            self.replicas,
            self.crashes,
            self.revives,
            self.failovers
        )?;
        writeln!(
            f,
            "replicas: {} hot-replicated, {} rebalanced on revive",
            self.replicated_factors, self.rebalanced_factors
        )?;
        write!(
            f,
            "shedding: {} cold-miss shed, {} refinements shed, {} unavailable",
            self.shed_cold_miss, self.refines_shed, self.unavailable
        )?;
        for s in &self.per_shard {
            write!(
                f,
                "\nshard {}:  {}, {} queued, {} factors ({:.1} MiB), {} hit / {} miss",
                s.shard,
                if s.alive { "up" } else { "DOWN" },
                s.queue_depth,
                s.cache_entries,
                s.cache_bytes as f64 / (1024.0 * 1024.0),
                s.cache_hits,
                s.cache_misses
            )?;
        }
        Ok(())
    }
}

/// Running collector the service mutates under its state lock; snapshots
/// compute the percentile fields.
#[derive(Debug, Default)]
pub(crate) struct Collector {
    pub submitted: u64,
    pub completed: u64,
    pub rejected_overloaded: u64,
    pub deadline_misses: u64,
    pub failed: u64,
    pub refined: u64,
    pub spd_fallbacks: u64,
    pub distributed_factors: u64,
    pub batches: u64,
    pub batched_requests: u64,
    pub max_batch: usize,
    /// End-to-end seconds of each completed request.
    pub latencies: Vec<f64>,
}

impl Collector {
    pub fn record_batch(&mut self, size: usize) {
        self.batches += 1;
        self.batched_requests += size as u64;
        self.max_batch = self.max_batch.max(size);
    }

    pub fn snapshot(&self, elapsed_s: f64) -> ServiceStats {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |q: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            Duration::from_secs_f64(sorted[idx])
        };
        let mean = if sorted.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(sorted.iter().sum::<f64>() / sorted.len() as f64)
        };
        ServiceStats {
            submitted: self.submitted,
            completed: self.completed,
            rejected_overloaded: self.rejected_overloaded,
            deadline_misses: self.deadline_misses,
            failed: self.failed,
            refined: self.refined,
            spd_fallbacks: self.spd_fallbacks,
            distributed_factors: self.distributed_factors,
            cache_hits: 0,   // filled by the service from the cache
            cache_misses: 0, // filled by the service
            cache_evictions: 0,
            cache_bytes: 0,
            cache_entries: 0,
            batches: self.batches,
            batched_requests: self.batched_requests,
            max_batch: self.max_batch,
            p50_latency: pct(0.50),
            p99_latency: pct(0.99),
            mean_latency: mean,
            max_latency: pct(1.0),
            throughput_rps: if elapsed_s > 0.0 {
                self.completed as f64 / elapsed_s
            } else {
                0.0
            },
            elapsed_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_latencies() {
        let c = Collector {
            completed: 100,
            latencies: (1..=100).map(|i| i as f64 / 1000.0).collect(),
            ..Collector::default()
        };
        let s = c.snapshot(2.0);
        assert!((s.p50_latency.as_secs_f64() - 0.050).abs() < 2e-3);
        assert!((s.p99_latency.as_secs_f64() - 0.099).abs() < 2e-3);
        assert!((s.max_latency.as_secs_f64() - 0.100).abs() < 1e-9);
        assert!((s.throughput_rps - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_collector_snapshot_is_zero() {
        let s = Collector::default().snapshot(0.0);
        assert_eq!(s.p50_latency, Duration::ZERO);
        assert_eq!(s.throughput_rps, 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_batch(), 0.0);
    }

    #[test]
    fn cluster_accounting_and_display() {
        let service = ServiceStats {
            submitted: 10,
            completed: 7,
            failed: 2,
            deadline_misses: 1,
            ..ServiceStats::default()
        };
        let mut cs = ClusterStats {
            service,
            shards: 4,
            replicas: 2,
            live_shards: 3,
            crashes: 1,
            revives: 1,
            failovers: 5,
            replicated_factors: 3,
            rebalanced_factors: 2,
            shed_cold_miss: 4,
            refines_shed: 1,
            unavailable: 0,
            per_shard: vec![ShardSnapshot {
                shard: 0,
                alive: false,
                queue_depth: 0,
                cache_entries: 0,
                cache_bytes: 0,
                cache_hits: 9,
                cache_misses: 3,
            }],
        };
        assert!(cs.accounted());
        let text = cs.to_string();
        for needle in ["cluster:", "replicas:", "shedding:", "shard 0:", "DOWN"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
        cs.service.completed -= 1; // one ticket vanished
        assert!(!cs.accounted());
    }

    #[test]
    fn display_mentions_every_section() {
        let mut c = Collector {
            completed: 4,
            latencies: vec![0.001; 4],
            ..Collector::default()
        };
        c.record_batch(4);
        let s = c.snapshot(1.0);
        let text = s.to_string();
        for needle in ["requests:", "cache:", "batching:", "latency:", "rate:"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }
}
