//! Content-addressed matrix identity.
//!
//! The factor cache must never serve a stale factor after a tenant
//! re-registers an id with different data, so cache keys are derived from
//! the matrix *contents*, not the caller-chosen id: dimensions plus an
//! FNV-1a hash over the element bit patterns. Two registrations of
//! bit-identical matrices (even under different ids) share one cache entry
//! — deduplication for free.

use denselin::Matrix;
use sparselin::CsrMatrix;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Domain tag mixed into sparse fingerprints so a CSR matrix and a dense
/// matrix with the same dimensions and value stream can never collide.
const SPARSE_TAG: u64 = 0x5350_4152_5345_4353; // "SPARSECS"

/// Identity of a matrix by shape and content.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// Row count.
    pub rows: u64,
    /// Column count.
    pub cols: u64,
    /// FNV-1a over the row-major `f64::to_bits` stream.
    pub hash: u64,
}

impl Fingerprint {
    /// Fingerprint a matrix. `O(n²)` but branch-free and sequential —
    /// negligible next to the `O(n³)` factorization it deduplicates.
    pub fn of(m: &Matrix) -> Self {
        let mut hash = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        mix(m.rows() as u64);
        mix(m.cols() as u64);
        for &x in m.as_slice() {
            mix(x.to_bits());
        }
        Fingerprint {
            rows: m.rows() as u64,
            cols: m.cols() as u64,
            hash,
        }
    }

    /// Fingerprint a sparse CSR matrix: dimensions, the full sparsity
    /// pattern (`row_ptr` + `col_idx`) *and* the value bit patterns, under
    /// a domain tag separating the sparse stream from [`Fingerprint::of`].
    /// Same-pattern matrices with different values get different prints —
    /// the cached preconditioner setup depends on values too (diagonal,
    /// triangle entries), not just structure.
    pub fn of_csr(a: &CsrMatrix) -> Self {
        let mut hash = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        mix(SPARSE_TAG);
        mix(a.rows() as u64);
        mix(a.cols() as u64);
        for &p in a.row_ptr() {
            mix(p as u64);
        }
        for &j in a.col_idx() {
            mix(j as u64);
        }
        for &v in a.values() {
            mix(v.to_bits());
        }
        Fingerprint {
            rows: a.rows() as u64,
            cols: a.cols() as u64,
            hash,
        }
    }

    /// Derive a fingerprint with `tag` folded into the hash. The sparse
    /// registration path uses this to key the cache by *(matrix contents,
    /// preconditioner)* — the cached object is the preconditioner setup, so
    /// the same matrix registered under Jacobi and SymGS must occupy two
    /// distinct cache entries.
    pub fn with_tag(self, tag: u64) -> Self {
        let mut hash = self.hash;
        for byte in tag.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        Fingerprint { hash, ..self }
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}#{:016x}", self.rows, self.cols, self.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_content_same_fingerprint() {
        let a = Matrix::from_fn(5, 5, |i, j| (i * 7 + j) as f64);
        let b = Matrix::from_fn(5, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn single_element_flip_changes_hash() {
        let a = Matrix::from_fn(6, 6, |i, j| (i + j) as f64);
        let mut b = a.clone();
        b[(3, 4)] = f64::from_bits(b[(3, 4)].to_bits() ^ 1); // one-ulp flip
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn shape_disambiguates_equal_streams() {
        // same element stream, different shapes: dims are mixed into the
        // hash and stored alongside it
        let a = Matrix::from_fn(2, 6, |i, j| (i * 6 + j) as f64);
        let b = Matrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn display_is_compact() {
        let fp = Fingerprint::of(&Matrix::identity(3));
        let s = fp.to_string();
        assert!(s.starts_with("3x3#"), "{s}");
    }
}
