//! Execution primitives shared by the single-node service
//! ([`crate::service`]) and the sharded cluster ([`crate::cluster`]):
//! result slots, the registered-matrix record, factorization routing
//! (Cholesky / distributed / local blocked LU) and iterative refinement.
//!
//! Keeping these here means the cluster's failover path factors and
//! refines with *exactly* the same code as the single-node service, so
//! the verifier's bitwise-equality oracles hold across both.

use std::sync::{Arc, Condvar, Mutex};

use conflux::{factorize_threaded, ConfluxConfig};
use denselin::gemm::{auto_threads, gemm_auto};
use denselin::lu::SingularMatrix;
use denselin::{cholesky_blocked, lu_blocked, lu_parallel_with, solve_refined, Matrix};
use sparselin::{cg, CgConfig, CgOutcome, CsrMatrix, PrecondSetup, Preconditioner, SparseError};

use crate::api::{MatrixKind, SolveError, SolveResponse};
use crate::cache::CachedFactor;
use crate::fingerprint::Fingerprint;
use crate::service::DistributedConfig;

/// One registered matrix: the data, how to factor it, and its content
/// fingerprint.
#[derive(Clone)]
pub(crate) struct Registered {
    pub(crate) matrix: Arc<Matrix>,
    pub(crate) kind: MatrixKind,
    pub(crate) fp: Fingerprint,
}

/// One registered sparse system: the CSR matrix, the preconditioner its
/// solves will use, and the fingerprint keying its cached setup (contents
/// + preconditioner tag, see [`Fingerprint::with_tag`]).
#[derive(Clone)]
pub(crate) struct SparseRegistered {
    pub(crate) matrix: Arc<CsrMatrix>,
    pub(crate) precond: Preconditioner,
    pub(crate) fp: Fingerprint,
}

/// Either kind of registered operand. The cluster only replicates dense
/// factors, so it keeps using [`Registered`] directly; the single-node
/// service serves both families through one queue.
#[derive(Clone)]
pub(crate) enum AnyRegistered {
    Dense(Registered),
    Sparse(SparseRegistered),
}

/// The rendezvous cell a ticket waits on: a worker delivers exactly one
/// result, the client takes it.
#[derive(Default)]
pub(crate) struct Slot {
    pub(crate) cell: Mutex<Option<Result<SolveResponse, SolveError>>>,
    pub(crate) ready: Condvar,
}

impl Slot {
    pub(crate) fn deliver(&self, result: Result<SolveResponse, SolveError>) {
        *self.cell.lock().unwrap() = Some(result);
        self.ready.notify_all();
    }

    pub(crate) fn wait_take(&self) -> Result<SolveResponse, SolveError> {
        let mut cell = self.cell.lock().unwrap();
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.ready.wait(cell).unwrap();
        }
    }
}

/// A factorization outcome plus how it was obtained.
pub(crate) struct Factored {
    pub(crate) factor: CachedFactor,
    pub(crate) distributed: bool,
    pub(crate) spd_fallback: bool,
}

pub(crate) fn is_symmetric(a: &Matrix) -> bool {
    (0..a.rows()).all(|i| (0..i).all(|j| a[(i, j)] == a[(j, i)]))
}

/// Factor `a` according to `kind`: Cholesky for (actually) SPD matrices,
/// the distributed COnfLUX driver for compatible large cold misses, the
/// local blocked LU otherwise.
pub(crate) fn factor_matrix(
    panel: usize,
    distributed: Option<DistributedConfig>,
    a: &Matrix,
    kind: MatrixKind,
) -> Result<Factored, SolveError> {
    let n = a.rows();
    let mut spd_fallback = false;
    if kind == MatrixKind::SymmetricPositiveDefinite && !is_symmetric(a) {
        // the blocked Cholesky only reads the lower triangle, so it can
        // "succeed" on a mis-tagged non-symmetric matrix and produce a
        // factor of the wrong matrix; catch the lie up front
        spd_fallback = true;
    } else if kind == MatrixKind::SymmetricPositiveDefinite {
        match cholesky_blocked(a, panel.min(n.max(1))) {
            Ok(l) => {
                return Ok(Factored {
                    factor: CachedFactor::Cholesky {
                        lt: l.transpose(),
                        l,
                    },
                    distributed: false,
                    spd_fallback: false,
                })
            }
            Err(_) => spd_fallback = true, // caller lied about SPD: use LU
        }
    }
    if let Some(d) = distributed {
        // the threaded driver asserts its preconditions; route around it
        // (to the local factorization) instead of panicking a worker
        let compatible = n >= d.min_n
            && d.grid.q.is_power_of_two()
            && d.tile >= d.grid.c
            && d.tile > 0
            && n.is_multiple_of(d.tile);
        if compatible {
            let ccfg = ConfluxConfig::dense(n, d.tile, d.grid);
            if let Ok(run) = factorize_threaded(&ccfg, a) {
                if let Some(factors) = run.factors {
                    return Ok(Factored {
                        factor: CachedFactor::Lu(factors.to_factorization()),
                        distributed: true,
                        spd_fallback,
                    });
                }
            }
            // fall through to the local path on any distributed failure
        }
    }
    // Large local factorizations (including the cluster shards' failover
    // path) go through the lookahead pipeline; it is bitwise identical to
    // `lu_blocked`, so the verifier's cross-implementation equality oracles
    // are unaffected by the routing threshold.
    let nb = panel.min(n.max(1));
    let local = if n >= LOOKAHEAD_MIN_N {
        lu_parallel_with(a, nb, auto_threads())
    } else {
        lu_blocked(a, nb)
    };
    match local {
        Ok(f) => Ok(Factored {
            factor: CachedFactor::Lu(f),
            distributed: false,
            spd_fallback,
        }),
        Err(SingularMatrix { column }) => Err(SolveError::Singular { column }),
    }
}

/// Order at which the local factorization switches from `lu_blocked` to
/// the lookahead-pipelined `lu_parallel` (below this the pipeline's
/// stripe/band bookkeeping costs more than it saves).
const LOOKAHEAD_MIN_N: usize = 192;

/// Refine one solve that missed its tolerance. Returns the refined
/// solution, its residual and the per-sweep history, or
/// [`SolveError::ToleranceNotMet`].
#[allow(clippy::type_complexity)]
pub(crate) fn refine_solution(
    factor: &CachedFactor,
    a: &Matrix,
    rhs: &Matrix,
    tolerance: f64,
    sweeps: usize,
    x0: Matrix,
    residual0: f64,
) -> Result<(Matrix, f64, Vec<f64>), SolveError> {
    if let Some(lu) = factor.as_lu() {
        let out = solve_refined(a, lu, rhs, sweeps, tolerance);
        if out.converged {
            let residual = out.final_residual();
            return Ok((out.x, residual, out.residual_history));
        }
        return Err(SolveError::ToleranceNotMet {
            achieved: out.final_residual(),
            requested: tolerance,
            sweeps: out.sweeps(),
        });
    }
    // Cholesky: same r = b - A·x; x += A⁻¹r iteration through the factor
    let bnorm = rhs.frobenius_norm().max(f64::MIN_POSITIVE);
    let mut x = x0;
    let mut best = residual0;
    let mut history = vec![residual0];
    for _ in 0..sweeps {
        if best <= tolerance {
            break;
        }
        let mut r = rhs.clone();
        gemm_auto(&mut r, -1.0, a, &x, 1.0);
        let mut dx = Matrix::zeros(r.rows(), r.cols());
        factor.solve_into(&r, &mut dx);
        let candidate = x.add(&dx);
        let mut r2 = rhs.clone();
        gemm_auto(&mut r2, -1.0, a, &candidate, 1.0);
        let rn = r2.frobenius_norm() / bnorm;
        if rn >= best {
            break; // stagnated: keep the better iterate
        }
        x = candidate;
        best = rn;
        history.push(rn);
    }
    if best <= tolerance {
        Ok((x, best, history))
    } else {
        Err(SolveError::ToleranceNotMet {
            achieved: best,
            requested: tolerance,
            sweeps: history.len() - 1,
        })
    }
}

// ---------------------------------------------------------------------------
// Sparse (CG) execution
// ---------------------------------------------------------------------------

/// Translate a sparse kernel failure into the service vocabulary.
pub(crate) fn map_sparse_error(e: SparseError) -> SolveError {
    match e {
        SparseError::ZeroDiagonal { row } => SolveError::Singular { column: row },
        SparseError::NotPositiveDefinite { iteration } => {
            SolveError::IndefiniteMatrix { iteration }
        }
        SparseError::NotConverged {
            iterations,
            residual,
        } => SolveError::ToleranceNotMet {
            achieved: residual,
            requested: 0.0,
            sweeps: iterations,
        },
        // structural errors the registration path already screens for;
        // surface the dimensions if one slips through
        SparseError::DimensionMismatch { expected, got } => SolveError::ShapeMismatch {
            matrix_rows: expected,
            rhs_rows: got,
        },
        SparseError::OutOfBounds { col, .. } | SparseError::NotTriangular { col, .. } => {
            SolveError::Singular { column: col }
        }
    }
}

/// Run the preconditioner setup for a registered sparse system — the
/// sparse analogue of [`factor_matrix`]: the expensive, cacheable phase.
pub(crate) fn prepare_sparse(
    a: &CsrMatrix,
    precond: Preconditioner,
) -> Result<Factored, SolveError> {
    let setup = PrecondSetup::prepare(precond, a).map_err(map_sparse_error)?;
    Ok(Factored {
        factor: CachedFactor::Sparse {
            setup: Arc::new(setup),
            n: a.rows(),
        },
        distributed: false,
        spd_fallback: false,
    })
}

/// Solve one member's multi-column RHS by CG, column by column, with
/// relaxed-tolerance degradation: a column whose *true* residual
/// `‖b − A·x‖₂/‖b‖₂` (recomputed by SpMV — CG's recursive residual drifts
/// below machine precision and cannot be trusted for acceptance) misses
/// `tolerance` is still accepted — flagged as degraded — if it is within
/// `relax × tolerance`; beyond that the member fails with
/// [`SolveError::ToleranceNotMet`] (no silent wrong answers).
///
/// Returns `(x, residual, degraded, history, iterations)` where `residual`
/// is the worst per-column true relative residual and `history` is the CG
/// residual trajectory of the worst column (the sparse counterpart of the
/// dense refinement history).
#[allow(clippy::type_complexity)]
pub(crate) fn solve_sparse_member(
    a: &CsrMatrix,
    setup: &PrecondSetup,
    rhs: &Matrix,
    tolerance: f64,
    relax: f64,
) -> Result<(Matrix, f64, bool, Vec<f64>, u64), SolveError> {
    let n = a.rows();
    let k = rhs.cols();
    let cfg = CgConfig {
        tol: tolerance,
        max_iters: 0, // n iterations: the exact-arithmetic CG bound
        threads: 0,   // auto: CG parallelism is bitwise thread-count independent
        record_iterates: false,
    };
    let mut x = Matrix::zeros(n, k);
    let mut worst = 0.0f64;
    let mut worst_history: Vec<f64> = Vec::new();
    let mut degraded = false;
    let mut iterations = 0u64;
    let mut col = vec![0.0f64; n];
    let mut ax = vec![0.0f64; n];
    for j in 0..k {
        for i in 0..n {
            col[i] = rhs[(i, j)];
        }
        let out: CgOutcome = cg(a, &col, setup, &cfg).map_err(map_sparse_error)?;
        iterations += out.iterations as u64;
        // judge acceptance on the recomputed true residual, same as the
        // dense path's batch GEMM check
        sparselin::spmv_parallel(a, &out.x, &mut ax, 0).map_err(map_sparse_error)?;
        let mut rr = 0.0f64;
        let mut bb = 0.0f64;
        for i in 0..n {
            let d = col[i] - ax[i];
            rr += d * d;
            bb += col[i] * col[i];
        }
        let res = if bb == 0.0 { 0.0 } else { (rr / bb).sqrt() };
        if res > tolerance {
            if res <= relax * tolerance {
                degraded = true;
            } else {
                return Err(SolveError::ToleranceNotMet {
                    achieved: res,
                    requested: tolerance,
                    sweeps: out.iterations,
                });
            }
        }
        if res >= worst {
            worst = res;
            worst_history = out.residual_history.clone();
        }
        for i in 0..n {
            x[(i, j)] = out.x[i];
        }
    }
    Ok((x, worst, degraded, worst_history, iterations))
}
