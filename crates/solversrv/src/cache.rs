//! Byte-budgeted LRU cache of factorizations.
//!
//! The service's entire economic argument is *amortization*: an `O(n³)`
//! factorization paid once serves any number of `O(n²)` solves. The cache
//! makes that concrete — keyed by [`Fingerprint`] (content, not id), sized
//! in bytes (factors of different orders have wildly different footprints,
//! so entry-count limits would be meaningless), evicting least-recently
//! used first, and counting hits/misses/evictions for the
//! [`crate::ServiceStats`] snapshot.

use std::collections::HashMap;
use std::sync::Arc;

use denselin::lu::LuFactorization;
use denselin::trsm::{trsm_lower_left, trsm_upper_left};
use denselin::Matrix;
use sparselin::PrecondSetup;

use crate::fingerprint::Fingerprint;

/// A cached, reusable factorization.
#[derive(Clone, Debug)]
pub enum CachedFactor {
    /// Partial-pivoting LU (the general path).
    Lu(LuFactorization),
    /// Cholesky `A = L·Lᵀ` for SPD-tagged matrices. The transpose is
    /// materialized once at insert time so every solve reuses the same
    /// row-major upper factor instead of re-transposing.
    Cholesky {
        /// Lower-triangular factor.
        l: Matrix,
        /// `Lᵀ`, precomputed for the backward substitution.
        lt: Matrix,
    },
    /// Prepared preconditioner for a sparse CG solve — the sparse analogue
    /// of a dense factor: setup (level schedules, extracted triangles /
    /// diagonal) is the expensive pattern-dependent phase, and caching it
    /// lets repeat solves skip straight to the iteration. `Arc`-shared
    /// because unlike the dense factors it is applied read-only, so cache
    /// lookups clone a pointer, not the payload.
    Sparse {
        /// The cached setup.
        setup: Arc<PrecondSetup>,
        /// Order of the system the setup belongs to.
        n: usize,
    },
}

impl CachedFactor {
    /// Resident size in bytes (matrix payloads + permutation).
    pub fn bytes(&self) -> usize {
        match self {
            CachedFactor::Lu(f) => {
                f.lu.len() * std::mem::size_of::<f64>()
                    + f.perm.len() * std::mem::size_of::<usize>()
            }
            CachedFactor::Cholesky { l, lt } => (l.len() + lt.len()) * std::mem::size_of::<f64>(),
            CachedFactor::Sparse { setup, .. } => setup.bytes(),
        }
    }

    /// Matrix order this factor solves for.
    pub fn n(&self) -> usize {
        match self {
            CachedFactor::Lu(f) => f.perm.len(),
            CachedFactor::Cholesky { l, .. } => l.rows(),
            CachedFactor::Sparse { n, .. } => *n,
        }
    }

    /// Kernel tag for per-request stats.
    pub fn kernel(&self) -> &'static str {
        match self {
            CachedFactor::Lu(_) => "lu",
            CachedFactor::Cholesky { .. } => "cholesky",
            CachedFactor::Sparse { .. } => "cg",
        }
    }

    /// The LU factorization, if that is what is cached (the refinement
    /// path needs the concrete type for [`denselin::solve_refined`]).
    pub fn as_lu(&self) -> Option<&LuFactorization> {
        match self {
            CachedFactor::Lu(f) => Some(f),
            CachedFactor::Cholesky { .. } | CachedFactor::Sparse { .. } => None,
        }
    }

    /// The cached preconditioner setup, if this is a sparse entry.
    pub fn as_sparse(&self) -> Option<&Arc<PrecondSetup>> {
        match self {
            CachedFactor::Sparse { setup, .. } => Some(setup),
            _ => None,
        }
    }

    /// Solve `A·x = b` for all columns of `b` at once into `out`
    /// (same shape as `b`). This is the batching primitive: the blocked
    /// `trsm` kernels stream the factor from memory once regardless of how
    /// many right-hand sides ride along.
    pub fn solve_into(&self, b: &Matrix, out: &mut Matrix) {
        match self {
            CachedFactor::Lu(f) => f.solve_into(b, out),
            CachedFactor::Cholesky { l, lt } => {
                assert_eq!(out.shape(), b.shape(), "output buffer shape must match b");
                assert_eq!(b.rows(), l.rows(), "rhs rows must match the factor");
                out.as_mut_slice().copy_from_slice(b.as_slice());
                trsm_lower_left(l, out, false);
                trsm_upper_left(lt, out, false);
            }
            // a preconditioner setup is not a factor of A: solving needs the
            // matrix itself (the CG iteration), which lives on the request —
            // workers route Sparse batches through the CG path instead
            CachedFactor::Sparse { .. } => {
                unreachable!("sparse entries solve through the CG path, not solve_into")
            }
        }
    }
}

#[derive(Debug)]
struct Entry {
    factor: CachedFactor,
    bytes: usize,
    last_used: u64,
}

/// LRU factor cache with a byte budget and full accounting.
#[derive(Debug)]
pub struct FactorCache {
    entries: HashMap<Fingerprint, Entry>,
    budget_bytes: usize,
    bytes: usize,
    tick: u64,
    /// Lookups that found a live factor.
    pub hits: u64,
    /// Lookups that missed (each implies a factorization).
    pub misses: u64,
    /// Entries evicted to stay under budget.
    pub evictions: u64,
    /// Total insertions.
    pub insertions: u64,
}

impl FactorCache {
    /// An empty cache holding at most `budget_bytes` of factor payload.
    pub fn new(budget_bytes: usize) -> Self {
        FactorCache {
            entries: HashMap::new(),
            budget_bytes,
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    /// Current resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit fraction of all lookups so far (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Look up a factor, counting a hit or miss and refreshing recency.
    /// Returns a clone-free shared handle via the closure-less API the
    /// worker needs: the factor is cloned out (factor payloads are
    /// `Arc`-free matrices; clone cost is `O(n²)` against the `O(n²·k)`
    /// solve it enables, and it lets workers solve outside the lock).
    pub fn lookup(&mut self, fp: Fingerprint) -> Option<CachedFactor> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&fp) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(e.factor.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Does the cache currently hold `fp`? (No accounting side effects.)
    pub fn contains(&self, fp: Fingerprint) -> bool {
        self.entries.contains_key(&fp)
    }

    /// Credit `n` additional hits: coalesced batch members share the
    /// factor their leader looked up, and each counts as a served hit.
    pub fn note_extra_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Fingerprints of every resident factor, in no particular order.
    /// The cluster's rebalance path uses this to find factors whose
    /// primary shard has rejoined.
    pub fn fingerprints(&self) -> Vec<Fingerprint> {
        self.entries.keys().copied().collect()
    }

    /// Borrow a resident factor without touching the hit/miss counters or
    /// recency (replication reads, not client traffic).
    pub fn peek(&self, fp: Fingerprint) -> Option<&CachedFactor> {
        self.entries.get(&fp).map(|e| &e.factor)
    }

    /// Drop every resident factor (a crashed shard loses its memory).
    /// Cumulative hit/miss/eviction/insertion counters are preserved —
    /// wiped entries are lost state, not evictions.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Insert a factor, evicting least-recently-used entries until the
    /// budget holds. A factor larger than the whole budget is still
    /// admitted alone (the service must be able to serve it); it will be
    /// the first evicted when anything else arrives.
    pub fn insert(&mut self, fp: Fingerprint, factor: CachedFactor) {
        let bytes = factor.bytes();
        self.tick += 1;
        if let Some(old) = self.entries.remove(&fp) {
            self.bytes -= old.bytes;
        }
        while !self.entries.is_empty() && self.bytes + bytes > self.budget_bytes {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| fp)
                .expect("nonempty");
            let gone = self.entries.remove(&victim).expect("present");
            self.bytes -= gone.bytes;
            self.evictions += 1;
        }
        self.bytes += bytes;
        self.insertions += 1;
        self.entries.insert(
            fp,
            Entry {
                factor,
                bytes,
                last_used: self.tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use denselin::lu_blocked;

    fn factor_of(n: usize, seed: u64) -> (Fingerprint, CachedFactor) {
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64 + seed as f64
            } else {
                1.0 / (1.0 + (i + 2 * j) as f64)
            }
        });
        let f = lu_blocked(&a, 8).unwrap();
        (Fingerprint::of(&a), CachedFactor::Lu(f))
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = FactorCache::new(1 << 20);
        let (fp, f) = factor_of(8, 1);
        assert!(c.lookup(fp).is_none());
        c.insert(fp, f);
        assert!(c.lookup(fp).is_some());
        assert_eq!((c.hits, c.misses), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-15);
        c.note_extra_hits(3);
        assert_eq!(c.hits, 4);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let (fp1, f1) = factor_of(16, 1);
        let (fp2, f2) = factor_of(16, 2);
        let (fp3, f3) = factor_of(16, 3);
        let per = f1.bytes();
        // room for exactly two factors
        let mut c = FactorCache::new(2 * per + per / 2);
        c.insert(fp1, f1);
        c.insert(fp2, f2);
        c.lookup(fp1); // refresh fp1 -> fp2 becomes LRU
        c.insert(fp3, f3);
        assert!(c.contains(fp1), "recently used entry evicted");
        assert!(!c.contains(fp2), "LRU entry survived");
        assert!(c.contains(fp3));
        assert_eq!(c.evictions, 1);
        assert!(c.bytes() <= 2 * per + per / 2);
    }

    #[test]
    fn oversized_factor_still_admitted() {
        let (fp, f) = factor_of(16, 1);
        let mut c = FactorCache::new(1); // absurdly small budget
        c.insert(fp, f);
        assert!(c.contains(fp));
        assert_eq!(c.len(), 1);
        // and it is the first to go
        let (fp2, f2) = factor_of(16, 2);
        c.insert(fp2, f2);
        assert!(!c.contains(fp));
        assert!(c.contains(fp2));
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let (fp, f) = factor_of(8, 1);
        let bytes = f.bytes();
        let mut c = FactorCache::new(1 << 20);
        c.insert(fp, f.clone());
        c.insert(fp, f);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), bytes);
        assert_eq!(c.evictions, 0);
    }

    #[test]
    fn clear_wipes_entries_but_keeps_counters() {
        let mut c = FactorCache::new(1 << 20);
        let (fp, f) = factor_of(8, 1);
        c.insert(fp, f);
        c.lookup(fp);
        assert!(c.peek(fp).is_some());
        assert_eq!(c.fingerprints(), vec![fp]);
        let (hits, evictions) = (c.hits, c.evictions);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert!(c.peek(fp).is_none());
        assert_eq!(c.hits, hits);
        assert_eq!(c.evictions, evictions, "clear is not an eviction");
        assert_eq!(c.insertions, 1);
    }

    #[test]
    fn peek_has_no_accounting_side_effects() {
        let mut c = FactorCache::new(1 << 20);
        let (fp, f) = factor_of(8, 2);
        c.insert(fp, f);
        let (h, m) = (c.hits, c.misses);
        assert!(c.peek(fp).is_some());
        let (fp_other, _) = factor_of(8, 3);
        assert!(c.peek(fp_other).is_none());
        assert_eq!((c.hits, c.misses), (h, m));
    }

    #[test]
    fn cholesky_factor_solves() {
        use denselin::cholesky_blocked;
        let n = 12;
        // SPD by construction: A = M·Mᵀ + n·I
        let m = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let mut a = m.matmul(&m.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let l = cholesky_blocked(&a, 4).unwrap();
        let lt = l.transpose();
        let factor = CachedFactor::Cholesky { l, lt };
        assert_eq!(factor.kernel(), "cholesky");
        assert_eq!(factor.n(), n);
        assert!(factor.as_lu().is_none());
        let x_true = Matrix::from_fn(n, 2, |i, j| (i + j) as f64);
        let b = a.matmul(&x_true);
        let mut x = Matrix::zeros(n, 2);
        factor.solve_into(&b, &mut x);
        assert!(x.allclose(&x_true, 1e-8));
    }
}
