//! Request/response types and the service's typed error vocabulary.

use std::fmt;
use std::time::Duration;

use denselin::Matrix;

use crate::fingerprint::Fingerprint;

/// How a registered matrix should be factored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixKind {
    /// General square matrix: partial-pivoting LU.
    General,
    /// Caller asserts symmetric positive definiteness: Cholesky, which
    /// halves the factor flops and skips pivoting. If the assertion turns
    /// out false (`cholesky_blocked` fails), the service silently falls
    /// back to LU and counts the fallback in [`crate::ServiceStats`].
    SymmetricPositiveDefinite,
}

/// One solve request against a registered matrix.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// Which registered matrix to solve against.
    pub matrix_id: u64,
    /// Right-hand side(s): `n × k` (each column is an independent system).
    pub rhs: Matrix,
    /// Relative residual `‖b − A·x‖_F/‖b‖_F` the caller will accept. When
    /// the direct solve misses it, the service degrades to iterative
    /// refinement before giving up.
    pub tolerance: f64,
    /// Maximum time the request may wait in the queue before workers
    /// abandon it with [`SolveError::DeadlineExceeded`]. `None` uses the
    /// service default (which may itself be "no deadline").
    pub deadline: Option<Duration>,
}

impl SolveRequest {
    /// A request with the default tolerance (`1e-10`) and no deadline.
    pub fn new(matrix_id: u64, rhs: Matrix) -> Self {
        SolveRequest {
            matrix_id,
            rhs,
            tolerance: 1e-10,
            deadline: None,
        }
    }

    /// Set the acceptable relative residual.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Set a queue-wait deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Per-request execution record, returned inside every [`SolveResponse`].
#[derive(Clone, Debug, Default)]
pub struct RequestStats {
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Factorization time (zero on a cache hit).
    pub factor_time: Duration,
    /// Triangular-solve time (shared batch time; every member of a
    /// coalesced batch reports the same value).
    pub solve_time: Duration,
    /// Iterative-refinement time (zero unless the request degraded).
    pub refine_time: Duration,
    /// Did the factor come out of the cache?
    pub cache_hit: bool,
    /// How many requests were coalesced into the batch that solved this
    /// one (1 = solved alone).
    pub batch_size: usize,
    /// Did the request degrade to iterative refinement?
    pub refined: bool,
    /// Relative residual after each refinement sweep (empty unless
    /// `refined`; index 0 is the pre-refinement residual).
    pub refine_history: Vec<f64>,
    /// Was the factorization routed through `conflux::factorize_threaded`?
    pub distributed_factor: bool,
    /// Which kernel backed the solve (`"lu"`/`"cholesky"`/`"cg"`).
    pub kernel: &'static str,
    /// Conjugate-gradient iterations spent on this request, summed over
    /// its RHS columns (0 on the dense direct paths).
    pub cg_iterations: u64,
    /// Which cluster shard executed the solve (`None` on the single-node
    /// service).
    pub shard: Option<usize>,
    /// How many times the request was re-routed to a replica after a shard
    /// crash (0 = served where it was first admitted).
    pub failovers: u32,
    /// Content fingerprint of the factor that produced `x`, echoed so
    /// callers (and the verifier's zero-stale oracle) can assert the
    /// response was solved against exactly the matrix they registered.
    pub fingerprint: Option<Fingerprint>,
}

/// A completed solve.
#[derive(Clone, Debug)]
pub struct SolveResponse {
    /// The solution, same shape as the request's `rhs`.
    pub x: Matrix,
    /// Achieved relative residual `‖b − A·x‖_F/‖b‖_F`.
    pub residual: f64,
    /// How the request was executed.
    pub stats: RequestStats,
}

/// Everything that can go wrong with a solve request.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// Admission control rejected the request: the bounded submission
    /// queue is full. Callers should back off and retry (see
    /// [`crate::solve_with_retry`]).
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// `matrix_id` was never registered.
    UnknownMatrix {
        /// The offending id.
        matrix_id: u64,
    },
    /// The RHS row count does not match the registered matrix.
    ShapeMismatch {
        /// Rows of the registered matrix.
        matrix_rows: usize,
        /// Rows of the submitted RHS.
        rhs_rows: usize,
    },
    /// The request waited in the queue past its deadline.
    DeadlineExceeded {
        /// How long it actually waited.
        waited: Duration,
        /// The deadline it carried.
        deadline: Duration,
    },
    /// Factorization hit an exactly singular column.
    Singular {
        /// First column with no usable pivot.
        column: usize,
    },
    /// A sparse CG solve found the operator not positive definite
    /// (`pᵀAp ≤ 0`). Definitive: CG cannot solve this system, retrying
    /// will fail identically.
    IndefiniteMatrix {
        /// CG iteration at which definiteness was lost.
        iteration: usize,
    },
    /// Even after iterative refinement the residual missed the requested
    /// tolerance. The partial result is discarded: no silent wrong
    /// answers.
    ToleranceNotMet {
        /// Best residual achieved.
        achieved: f64,
        /// What the request asked for.
        requested: f64,
        /// Refinement sweeps performed before giving up.
        sweeps: usize,
    },
    /// The service is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// Cluster admission shed this request because it would require a cold
    /// factorization while the cluster is under load-shedding pressure
    /// (see `ShedPolicy`); cache hits are still being served. Retryable.
    ShedColdMiss {
        /// Cluster-wide queue depth observed at rejection time.
        depth: usize,
    },
    /// Every shard that replicates this request's fingerprint is currently
    /// crashed. Retryable: shards may be revived.
    NoLiveReplica {
        /// Shards currently alive (cluster-wide).
        live: usize,
        /// Total shards in the cluster.
        shards: usize,
    },
}

impl SolveError {
    /// True for errors a backing-off client should retry: transient
    /// overload and shedding states, plus total replica loss (shards can
    /// be revived). Everything else is a definitive answer.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SolveError::Overloaded { .. }
                | SolveError::ShedColdMiss { .. }
                | SolveError::NoLiveReplica { .. }
        )
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Overloaded { depth } => {
                write!(f, "service overloaded: submission queue full ({depth} pending)")
            }
            SolveError::UnknownMatrix { matrix_id } => {
                write!(f, "matrix {matrix_id} is not registered")
            }
            SolveError::ShapeMismatch {
                matrix_rows,
                rhs_rows,
            } => write!(
                f,
                "rhs has {rhs_rows} rows but the matrix has {matrix_rows}"
            ),
            SolveError::DeadlineExceeded { waited, deadline } => write!(
                f,
                "queued {:.3} ms, past the {:.3} ms deadline",
                waited.as_secs_f64() * 1e3,
                deadline.as_secs_f64() * 1e3
            ),
            SolveError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            SolveError::IndefiniteMatrix { iteration } => {
                write!(f, "matrix is not positive definite (detected at CG iteration {iteration})")
            }
            SolveError::ToleranceNotMet {
                achieved,
                requested,
                sweeps,
            } => write!(
                f,
                "residual {achieved:.3e} > tolerance {requested:.3e} after {sweeps} refinement sweeps"
            ),
            SolveError::ShuttingDown => write!(f, "service is shutting down"),
            SolveError::ShedColdMiss { depth } => write!(
                f,
                "cluster is shedding cold-miss factorizations ({depth} queued)"
            ),
            SolveError::NoLiveReplica { live, shards } => write!(
                f,
                "no live replica for this matrix ({live} of {shards} shards up)"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let r = SolveRequest::new(3, Matrix::zeros(4, 1))
            .with_tolerance(1e-6)
            .with_deadline(Duration::from_millis(5));
        assert_eq!(r.matrix_id, 3);
        assert_eq!(r.tolerance, 1e-6);
        assert_eq!(r.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    fn errors_display() {
        let cases: Vec<(SolveError, &str)> = vec![
            (SolveError::Overloaded { depth: 9 }, "overloaded"),
            (SolveError::UnknownMatrix { matrix_id: 1 }, "not registered"),
            (
                SolveError::ShapeMismatch {
                    matrix_rows: 4,
                    rhs_rows: 5,
                },
                "5 rows",
            ),
            (
                SolveError::DeadlineExceeded {
                    waited: Duration::from_millis(10),
                    deadline: Duration::from_millis(2),
                },
                "deadline",
            ),
            (SolveError::Singular { column: 3 }, "column 3"),
            (
                SolveError::IndefiniteMatrix { iteration: 2 },
                "CG iteration 2",
            ),
            (
                SolveError::ToleranceNotMet {
                    achieved: 1e-3,
                    requested: 1e-12,
                    sweeps: 4,
                },
                "4 refinement sweeps",
            ),
            (SolveError::ShuttingDown, "shutting down"),
            (SolveError::ShedColdMiss { depth: 7 }, "shedding cold-miss"),
            (
                SolveError::NoLiveReplica { live: 1, shards: 4 },
                "1 of 4 shards",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn retryability_matches_transient_states() {
        assert!(SolveError::Overloaded { depth: 1 }.is_retryable());
        assert!(SolveError::ShedColdMiss { depth: 1 }.is_retryable());
        assert!(SolveError::NoLiveReplica { live: 0, shards: 2 }.is_retryable());
        assert!(!SolveError::ShuttingDown.is_retryable());
        assert!(!SolveError::Singular { column: 0 }.is_retryable());
        assert!(!SolveError::IndefiniteMatrix { iteration: 0 }.is_retryable());
        assert!(!SolveError::UnknownMatrix { matrix_id: 9 }.is_retryable());
    }
}
