//! Client-side retry helper for overloaded services.
//!
//! Admission control turns overload into an explicit, immediate
//! [`SolveError::Overloaded`] instead of unbounded queueing; the polite
//! client response is capped exponential backoff — exactly the machinery
//! [`simnet::RetryPolicy`] already provides for faulty-network
//! retransmission, reused here unchanged.

use simnet::RetryPolicy;

use crate::api::{SolveError, SolveRequest, SolveResponse};
use crate::service::SolverHandle;

/// Submit `req`, retrying with exponential backoff while the service
/// reports [`SolveError::Overloaded`]. Any other outcome (success or a
/// different error) returns immediately; an overload that persists past
/// `policy.max_retries` attempts is returned as-is.
pub fn solve_with_retry(
    handle: &SolverHandle,
    req: &SolveRequest,
    policy: &RetryPolicy,
) -> Result<SolveResponse, SolveError> {
    let mut attempt = 0u32;
    loop {
        match handle.solve(req.clone()) {
            Err(SolveError::Overloaded { .. }) if attempt < policy.max_retries => {
                std::thread::sleep(policy.backoff(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MatrixKind;
    use crate::service::{serve, ServiceConfig};
    use denselin::Matrix;

    #[test]
    fn retry_succeeds_through_transient_overload() {
        // one worker, a queue of one: a burst of submissions from a single
        // client thread cannot overload it, but the retry path still has
        // to terminate and return the answer
        let cfg = ServiceConfig {
            workers: 1,
            max_queue: 1,
            ..ServiceConfig::default()
        };
        let a = Matrix::from_fn(8, 8, |i, j| if i == j { 3.0 } else { 0.1 });
        let b = Matrix::from_fn(8, 1, |i, _| 1.0 + i as f64);
        let ((), report) = serve(cfg, |h| {
            h.register_matrix(1, a.clone(), MatrixKind::General);
            let policy = RetryPolicy::default();
            for _ in 0..8 {
                let resp = solve_with_retry(h, &SolveRequest::new(1, b.clone()), &policy).unwrap();
                assert!(resp.residual <= 1e-10);
            }
        });
        assert_eq!(report.stats.completed, 8);
    }

    #[test]
    fn non_overload_errors_return_immediately() {
        let ((), _) = serve(ServiceConfig::default(), |h| {
            let req = SolveRequest::new(99, Matrix::zeros(4, 1));
            let err = solve_with_retry(h, &req, &RetryPolicy::default()).unwrap_err();
            assert_eq!(err, SolveError::UnknownMatrix { matrix_id: 99 });
        });
    }
}
