//! Client-side retry helper for overloaded services.
//!
//! Admission control turns overload into an explicit, immediate
//! [`SolveError::Overloaded`] (or one of the cluster's shedding errors)
//! instead of unbounded queueing; the polite client response is capped
//! exponential backoff — exactly the machinery [`simnet::RetryPolicy`]
//! already provides for faulty-network retransmission.
//!
//! Backoff here is *jittered*: a fleet of clients that all hit
//! `Overloaded` at the same instant and sleep the same deterministic
//! interval stampedes back in lockstep, re-overloading the service on
//! every wave (the thundering herd). [`RetryPolicy::jittered_backoff`]
//! spreads each client's retry uniformly below the exponential ceiling,
//! keyed by a per-call seed, so the herd decorrelates while every run
//! stays replayable.

use std::sync::atomic::{AtomicU64, Ordering};

use simnet::RetryPolicy;

use crate::api::{SolveError, SolveRequest, SolveResponse};
use crate::cluster::ClusterHandle;
use crate::service::SolverHandle;

/// Anything that can execute a [`SolveRequest`] end to end: the
/// single-node [`SolverHandle`] and the sharded [`ClusterHandle`]. The
/// retry helpers are generic over this, so load generators drive both
/// through one code path.
pub trait Solver {
    /// Submit and block for the answer.
    fn solve(&self, req: SolveRequest) -> Result<SolveResponse, SolveError>;
}

impl Solver for SolverHandle {
    fn solve(&self, req: SolveRequest) -> Result<SolveResponse, SolveError> {
        SolverHandle::solve(self, req)
    }
}

impl Solver for ClusterHandle {
    fn solve(&self, req: SolveRequest) -> Result<SolveResponse, SolveError> {
        ClusterHandle::solve(self, req)
    }
}

/// Process-wide counter handing each retry loop a distinct jitter seed,
/// so concurrent clients decorrelate without any coordination.
static NEXT_SEED: AtomicU64 = AtomicU64::new(0x5eed_0fc1_1e27);

/// Submit `req`, retrying with jittered exponential backoff while the
/// error is transient ([`SolveError::is_retryable`]). Any other outcome
/// returns immediately; a transient error that persists past
/// `policy.max_retries` attempts is returned as-is. Each call draws a
/// fresh jitter seed — see [`solve_with_retry_seeded`] for replayable
/// schedules.
pub fn solve_with_retry<S: Solver>(
    handle: &S,
    req: &SolveRequest,
    policy: &RetryPolicy,
) -> Result<SolveResponse, SolveError> {
    let seed = NEXT_SEED.fetch_add(1, Ordering::Relaxed);
    solve_with_retry_seeded(handle, req, policy, seed)
}

/// [`solve_with_retry`] with an explicit jitter seed: two runs passing
/// the same seeds observe identical backoff schedules, which is what the
/// chaos bench and the verifier need for reproducibility.
pub fn solve_with_retry_seeded<S: Solver>(
    handle: &S,
    req: &SolveRequest,
    policy: &RetryPolicy,
    seed: u64,
) -> Result<SolveResponse, SolveError> {
    let mut attempt = 0u32;
    loop {
        match handle.solve(req.clone()) {
            Err(e) if e.is_retryable() && attempt < policy.max_retries => {
                std::thread::sleep(policy.jittered_backoff(attempt, seed));
                attempt += 1;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MatrixKind;
    use crate::cluster::{serve_cluster, ClusterConfig};
    use crate::service::{serve, ServiceConfig};
    use denselin::Matrix;

    #[test]
    fn retry_succeeds_through_transient_overload() {
        // one worker, a queue of one: a burst of submissions from a single
        // client thread cannot overload it, but the retry path still has
        // to terminate and return the answer
        let cfg = ServiceConfig {
            workers: 1,
            max_queue: 1,
            ..ServiceConfig::default()
        };
        let a = Matrix::from_fn(8, 8, |i, j| if i == j { 3.0 } else { 0.1 });
        let b = Matrix::from_fn(8, 1, |i, _| 1.0 + i as f64);
        let ((), report) = serve(cfg, |h| {
            h.register_matrix(1, a.clone(), MatrixKind::General);
            let policy = RetryPolicy::default();
            for _ in 0..8 {
                let resp = solve_with_retry(h, &SolveRequest::new(1, b.clone()), &policy).unwrap();
                assert!(resp.residual <= 1e-10);
            }
        });
        assert_eq!(report.stats.completed, 8);
    }

    #[test]
    fn non_overload_errors_return_immediately() {
        let ((), _) = serve(ServiceConfig::default(), |h| {
            let req = SolveRequest::new(99, Matrix::zeros(4, 1));
            let err = solve_with_retry(h, &req, &RetryPolicy::default()).unwrap_err();
            assert_eq!(err, SolveError::UnknownMatrix { matrix_id: 99 });
        });
    }

    #[test]
    fn retry_drives_the_cluster_handle_too() {
        let cfg = ClusterConfig {
            shards: 2,
            replicas: 2,
            workers_per_shard: 1,
            max_queue: 1,
            panel: 8,
            ..ClusterConfig::default()
        };
        let a = Matrix::from_fn(8, 8, |i, j| if i == j { 4.0 } else { 0.2 });
        let b = Matrix::from_fn(8, 1, |i, _| 1.0 + i as f64);
        let ((), report) = serve_cluster(cfg, |h| {
            h.register_matrix(1, a.clone(), MatrixKind::General);
            let policy = RetryPolicy::default();
            for s in 0..6 {
                let resp = solve_with_retry_seeded(h, &SolveRequest::new(1, b.clone()), &policy, s)
                    .unwrap();
                assert!(resp.residual <= 1e-10);
            }
        });
        assert_eq!(report.stats.service.completed, 6);
        assert!(report.stats.accounted());
    }

    #[test]
    fn distinct_seeds_draw_distinct_backoffs() {
        // the decorrelation property the herd fix rests on, exercised
        // through the same policy the helpers use
        let policy = RetryPolicy::default();
        let draws: std::collections::HashSet<_> = (0..32u64)
            .map(|seed| policy.jittered_backoff(5, seed))
            .collect();
        assert!(
            draws.len() > 24,
            "seeds collapsed: {} distinct",
            draws.len()
        );
    }
}
