//! `solversrv` — a multi-tenant batched factor-and-solve service.
//!
//! Every other entry point in this repo is a one-shot driver: factor a
//! matrix, print stats, exit. This crate is the serving layer on top of the
//! same kernels — the natural unit of production traffic for a
//! communication-avoiding factorization is *many cheap solves amortizing
//! one expensive factorization*, and the service is built around exactly
//! that asymmetry:
//!
//! * [`api`] — typed requests ([`SolveRequest`]), responses
//!   ([`SolveResponse`]) and errors ([`SolveError`]),
//! * [`fingerprint`] — content-addressed matrix identity (dims + FNV-1a
//!   over the element bit patterns; sparse matrices hash their CSR
//!   pattern *and* values under a domain tag),
//! * [`cache`] — a byte-budgeted LRU of [`denselin::LuFactorization`]s,
//!   Cholesky factors for SPD-tagged matrices, and prepared sparse
//!   preconditioner setups ([`sparselin::PrecondSetup`]) — the cacheable
//!   phase of a CG solve,
//! * [`service`] — the worker pool: bounded submission queue, admission
//!   control (`Err(Overloaded)` fast-fail), per-request deadlines, and
//!   **RHS batching** — concurrent solves against the same cached factor
//!   coalesce into one multi-RHS blocked-`trsm` pass so the factor is
//!   streamed from memory once instead of once per request. Sparse SPD
//!   systems register via [`service::SolverHandle::register_sparse`] and
//!   solve by preconditioned CG through the same queue, cache, deadline
//!   and batching machinery; their degradation path relaxes the CG
//!   tolerance ([`ServiceConfig::sparse_relax`]) instead of running
//!   refinement sweeps,
//! * [`stats`] — [`ServiceStats`] latency/throughput/cache snapshots,
//! * [`client`] — jittered retry/backoff submission helpers reusing
//!   [`simnet::RetryPolicy`], generic over single-node and cluster
//!   handles via the [`Solver`] trait,
//! * [`cluster`] — sharded, replicated serving: consistent-hash routing
//!   of fingerprints across shard services, hot-factor replication,
//!   crash-tolerant failover driven by [`simnet::FaultPlan`], tiered
//!   load shedding and rebalance-on-revive (see [`serve_cluster`]).
//!
//! Cold factorizations of sufficiently large matrices can optionally route
//! through the real distributed driver ([`conflux::factorize_threaded`])
//! via [`DistributedConfig`]; the resulting [`conflux::LuFactors`] handle
//! converts into the same cached [`denselin::LuFactorization`] shape.
//!
//! # Example
//!
//! ```
//! use denselin::Matrix;
//! use solversrv::{serve, MatrixKind, ServiceConfig, SolveRequest};
//!
//! let a = Matrix::from_fn(16, 16, |i, j| if i == j { 4.0 } else { 0.25 });
//! let b = Matrix::from_fn(16, 1, |i, _| i as f64);
//! let (resp, report) = serve(ServiceConfig::default(), |h| {
//!     h.register_matrix(7, a, MatrixKind::General);
//!     h.solve(SolveRequest::new(7, b)).unwrap()
//! });
//! assert!(resp.residual <= 1e-10);
//! assert_eq!(report.stats.completed, 1);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod cluster;
mod exec;
pub mod fingerprint;
pub mod service;
pub mod stats;

pub use api::{MatrixKind, RequestStats, SolveError, SolveRequest, SolveResponse};
pub use cache::{CachedFactor, FactorCache};
pub use client::{solve_with_retry, solve_with_retry_seeded, Solver};
pub use cluster::{
    serve_cluster, ClusterConfig, ClusterHandle, ClusterReport, HashRing, ShedPolicy,
};
pub use fingerprint::Fingerprint;
pub use service::{serve, DistributedConfig, ServiceConfig, ServiceReport, SolverHandle, Ticket};
pub use sparselin::{CsrMatrix, Preconditioner};
pub use stats::{ClusterStats, ServiceStats, ShardSnapshot};
